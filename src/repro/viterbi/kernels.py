"""Fused trellis-update kernels.

The reference forward passes in :mod:`repro.viterbi.decoder` and
:mod:`repro.viterbi.multires` are correct and hookable, but they pay a
fixed Python/numpy-dispatch cost *per trellis step*: a branch-metric
broadcast, an ``argmin`` plus ``take_along_axis`` pair, and a handful of
temporaries, every step of every frame batch.  For the small arrays a
Viterbi batch produces (``frames x states``), that dispatch overhead —
not arithmetic — dominates cold evaluation time.

This module removes it without changing a single output bit:

- **Precomputed branch metrics.**  The whole received tensor is
  quantized once, each step's level tuple is folded into one integer
  (:func:`symbol_indices`), and per-step metrics become a single
  ``np.take`` from the table built by
  :meth:`~repro.viterbi.metrics.BranchMetricTable.combo_lut` instead of
  a broadcast + mask + reduce inside the loop.
- **Two-way compare-select.**  A radix-2 trellis has exactly two
  predecessors per state, so ``argmin`` + ``take_along_axis`` over an
  axis of length 2 collapses to one ``<`` and one ``minimum``.
  ``np.argmin`` returns the *first* minimal index, which is exactly
  ``c1 < c0`` — ties select slot 0 in both formulations, keeping the
  survivor memory bit-identical.
- **Hoisted buffers.**  Candidate/metric scratch arrays are allocated
  once and rotated, so the step loop performs no allocations beyond
  numpy's internal reductions.

The kernels are *drop-in equivalent*: for every input they produce the
same ``(decisions, best)`` arrays, the same ``_final_metrics``, and
therefore the same decoded bits as the reference loops.  Decoders use
them only when no fault-injection hook is attached — the hooked path
keeps the reference loop so resilience semantics stay untouched — and
only when the metric tables are small enough to precompute
(``combo_lut()`` returns ``None`` otherwise).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

#: Kernel names accepted by the decoders, the evaluator, and the CLI.
DECODE_KERNELS: Tuple[str, ...] = ("fused", "reference")


def symbol_indices(levels: np.ndarray, base: int) -> np.ndarray:
    """Fold quantized level tuples into single lookup-table row indices.

    ``levels`` has shape ``(..., n_symbols)`` with entries in
    ``[-1, base - 2]`` (``-1`` is the erasure sentinel); the result has
    shape ``(...)`` with symbol 0 as the most significant digit,
    matching the row ordering of
    :meth:`~repro.viterbi.metrics.BranchMetricTable.combo_lut`.
    """
    levels = np.asarray(levels)
    n = levels.shape[-1]
    index = levels[..., 0] + 1
    for k in range(1, n):
        index = index * base + (levels[..., k] + 1)
    return index


def _state_dtype(n_states: int) -> type:
    """Smallest unsigned dtype that can hold a state index."""
    if n_states <= 1 << 8:
        return np.uint8
    if n_states <= 1 << 16:
        return np.uint16
    return np.uint32


def fused_forward(
    decoder, received: np.ndarray, sigma: Optional[float]
) -> Tuple[np.ndarray, np.ndarray]:
    """Fused add-compare-select for :class:`ViterbiDecoder`.

    Bit-identical to ``ViterbiDecoder._forward_reference`` with no
    fault hook attached; the caller guarantees both that and the
    availability of the combo lookup table.
    """
    n_frames, n_steps, _ = received.shape
    levels = decoder.quantizer.quantize(received, sigma)
    symbols = symbol_indices(levels, decoder.quantizer.lut_base)
    lut = decoder.metric_table.combo_lut()
    n_states = decoder.trellis.n_states
    # State-major double-width layout: everything in the loop is
    # (2 * states, frames), with rows [0, S) the slot-0 branches and
    # [S, 2S) the slot-1 branches.  That turns the per-step predecessor
    # gather into a row gather (contiguous copies) instead of a column
    # gather, and halves the gather count versus separate slot tables.
    # Stored as float64 (metrics are small integers, exactly
    # representable) so the accumulate below adds without a per-step
    # int->float conversion pass.
    lutw = np.ascontiguousarray(
        np.transpose(lut, (2, 1, 0)).reshape(2 * n_states, lut.shape[0]),
        dtype=np.float64,
    )
    predw = np.ascontiguousarray(decoder.trellis.predecessors.T.reshape(-1))

    acc = np.ascontiguousarray(decoder._initial_metrics(n_frames).T)
    decisions = np.empty((n_steps, n_states, n_frames), dtype=np.uint8)
    best = np.empty((n_steps, n_frames), dtype=np.int64)
    # Survivor table for fused_traceback, built step by step while the
    # decision bits are still cache-hot: survivors[t, f, s] is the
    # predecessor the survivor branch into state s came from.  Stored
    # frame-major so the trace-back walk gathers with a stride-1 state
    # axis from a step block small enough to stay cache-resident.
    sdtype = _state_dtype(n_states)
    survivors = np.empty((n_steps, n_frames, n_states), dtype=sdtype)
    pred0_row = decoder.trellis.predecessors[:, 0].astype(sdtype)
    # Slot-1 minus slot-0 predecessor, wrapping in the unsigned dtype;
    # pred0 + take1 * pdiff wraps back to exactly pred1 when take1 is
    # set, so the two-ufunc build below equals np.where(take1, p1, p0).
    pdiff_row = (
        decoder.trellis.predecessors[:, 1]
        - decoder.trellis.predecessors[:, 0]
    ).astype(sdtype)

    # Scratch buffers, allocated once and rotated through the loop.
    cand = np.empty((2 * n_states, n_frames))
    c0 = cand[:n_states]
    c1 = cand[n_states:]
    metrics = np.empty((2 * n_states, n_frames), dtype=lutw.dtype)
    nacc = np.empty_like(acc)
    take1 = np.empty((n_states, n_frames), dtype=bool)
    rowmin = np.empty((1, n_frames))

    for t in range(n_steps):
        np.take(lutw, symbols[:, t], axis=1, out=metrics)
        np.take(acc, predw, axis=0, out=cand)
        cand += metrics
        # argmin over the 2-candidate axis == "is slot 1 strictly
        # smaller"; ties keep slot 0, exactly like np.argmin.
        np.less(c1, c0, out=take1)
        decisions[t] = take1
        surv_t = survivors[t]
        np.multiply(take1.T, pdiff_row, out=surv_t)
        surv_t += pred0_row
        np.minimum(c0, c1, out=nacc)
        best[t] = nacc.argmin(axis=0)
        np.min(nacc, axis=0, keepdims=True, out=rowmin)
        nacc -= rowmin
        acc, nacc = nacc, acc
    decoder._final_metrics = np.ascontiguousarray(acc.T)
    # The rest of the decoder thinks in (steps, frames, states); hand
    # back a transposed view.  The survivor table is keyed to exactly
    # this decisions object — fused_traceback reuses it only when
    # handed the identical array back (and rebuilds otherwise).
    out = decisions.transpose(0, 2, 1)
    decoder._fused_survivors = survivors
    decoder._fused_survivors_key = out
    return out, best


def fused_forward_multires(
    decoder, received: np.ndarray, sigma: Optional[float]
) -> Tuple[np.ndarray, np.ndarray]:
    """Fused forward pass for :class:`MultiresolutionViterbiDecoder`.

    Replicates the reference step ordering operation for operation —
    low-resolution update, M-state selection via ``argpartition``,
    high-resolution recomputation with the correction term, merge —
    with the branch-metric computations replaced by table gathers and
    the two radix-2 selects replaced by compare-select.  The
    low-resolution table masks erasures (as
    :meth:`~repro.viterbi.metrics.BranchMetricTable.compute` does); the
    high-resolution table does *not* (as ``compute_for_states`` does
    not), preserving the reference asymmetry on punctured streams.
    """
    n_frames, n_steps, _ = received.shape
    low_levels = decoder.low_quantizer.quantize(received, sigma)
    high_levels = decoder.high_quantizer.quantize(received, sigma)
    low_symbols = symbol_indices(low_levels, decoder.low_quantizer.lut_base)
    high_symbols = symbol_indices(high_levels, decoder.high_quantizer.lut_base)
    low_lut = decoder.metric_table.combo_lut()
    high_lut = decoder.high_metric_table.combo_lut(erasure_masked=False)
    predecessors = decoder.trellis.predecessors
    n_states = decoder.trellis.n_states
    # Double-width layout (see fused_forward): slot-0 branches in the
    # first n_states columns, slot-1 in the rest.  Both tables are
    # stored as float64 — the values are small integers, so every
    # downstream comparison, scaling, and mean is value-identical to
    # the reference's int64 arithmetic while skipping the conversion
    # passes inside the loop.
    lutw = np.ascontiguousarray(
        np.transpose(low_lut, (0, 2, 1)).reshape(low_lut.shape[0], 2 * n_states),
        dtype=np.float64,
    )
    high_lut = high_lut.astype(np.float64)
    predw = np.ascontiguousarray(predecessors.T.reshape(-1))
    m = decoder.multires_paths
    scale_offset = decoder.normalization_method == "scale-offset"
    corrected = decoder.normalization_method != "none"

    acc = decoder._initial_metrics(n_frames)
    decisions = np.empty((n_steps, n_frames, n_states), dtype=np.uint8)
    best = np.empty((n_steps, n_frames), dtype=np.int64)
    frame_col = np.arange(n_frames)[:, np.newaxis]
    if m == n_states:
        # Every state is recomputed: the selection is a constant.
        all_states = np.broadcast_to(
            np.arange(n_states), (n_frames, n_states)
        ).copy()

    cand = np.empty((n_frames, 2 * n_states))
    c0 = cand[:, :n_states]
    c1 = cand[:, n_states:]
    metrics = np.empty((n_frames, 2 * n_states), dtype=lutw.dtype)
    m0 = metrics[:, :n_states]
    m1 = metrics[:, n_states:]
    new_acc = np.empty_like(acc)
    take1 = np.empty((n_frames, n_states), dtype=bool)
    rowmin = np.empty((n_frames, 1))

    for t in range(n_steps):
        # --- low-resolution update of the full trellis ----------------
        np.take(lutw, low_symbols[:, t], axis=0, out=metrics)
        np.take(acc, predw, axis=1, out=cand)
        cand += metrics
        np.less(c1, c0, out=take1)
        np.minimum(c0, c1, out=new_acc)

        # --- select the M most promising states -----------------------
        if m < n_states:
            chosen = np.argpartition(new_acc, m - 1, axis=1)[:, :m]
        else:
            chosen = all_states
        chosen_acc = np.take_along_axis(new_acc, chosen, axis=1)
        order = np.argsort(chosen_acc, axis=1)

        # --- high-resolution recomputation ----------------------------
        high_metrics = high_lut[high_symbols[:, t, np.newaxis], chosen]
        if scale_offset:
            high_metrics = high_metrics * decoder._scale
        if corrected:
            low_chosen0 = np.take_along_axis(m0, chosen, axis=1)
            low_chosen1 = np.take_along_axis(m1, chosen, axis=1)
            correction = decoder._correction(
                np.minimum(low_chosen0, low_chosen1),
                high_metrics.min(axis=2),
                order,
            )
            high_metrics = high_metrics - correction[:, :, np.newaxis]

        prev_chosen = predecessors[chosen]  # (frames, m, 2)
        cand_high = acc[frame_col, prev_chosen.reshape(n_frames, -1)]
        cand_high = cand_high.reshape(n_frames, m, 2) + high_metrics
        slot_high = cand_high[:, :, 1] < cand_high[:, :, 0]
        val_high = np.minimum(cand_high[:, :, 0], cand_high[:, :, 1])

        # --- merge recomputed states back -----------------------------
        np.put_along_axis(new_acc, chosen, val_high, axis=1)
        decisions[t] = take1
        np.put_along_axis(
            decisions[t], chosen, slot_high.astype(np.uint8), axis=1
        )
        best[t] = new_acc.argmin(axis=1)
        np.min(new_acc, axis=1, keepdims=True, out=rowmin)
        new_acc -= rowmin
        acc, new_acc = new_acc, acc
    decoder._final_metrics = acc
    return decisions, best


def fused_traceback(
    decoder, decisions: np.ndarray, best: np.ndarray
) -> np.ndarray:
    """Flat-indexed sliding trace-back, bit-identical to the reference.

    Walks the same survivor branches as ``ViterbiDecoder._traceback``
    (bit ``tau`` comes from ``L - 1`` steps back from the best state
    after step ``tau + L - 1``), but folds decision bits and
    predecessors into one *survivor table*
    (``survivors[t, f, s] = predecessors[s, decisions[t, f, s]]``) so
    every level of the sliding walk is a single flat ``np.take`` on
    precomputed offsets, with the offset scratch reused across levels.
    """
    n_steps, n_frames, n_states = decisions.shape
    depth = min(decoder.traceback_depth, n_steps)
    predecessors = decoder.trellis.predecessors
    shift = max(decoder.trellis.constraint_length - 2, 0)
    bits = np.empty((n_frames, n_steps), dtype=np.int8)

    n_lead = n_steps - depth + 1
    if n_lead > 0:
        # Survivor table: survivors[t, f, s] is the predecessor state
        # of the survivor branch into s, stored frame-major in the
        # narrowest dtype that fits.  fused_forward builds it in-loop
        # and keys it to the decisions object it returned; any other
        # decisions array (the multiresolution forward, or a direct
        # _traceback call) gets a one-pass rebuild here.
        survivors = getattr(decoder, "_fused_survivors", None)
        if getattr(decoder, "_fused_survivors_key", None) is not decisions:
            sdtype = _state_dtype(n_states)
            pred = predecessors.astype(sdtype)
            survivors = np.where(
                np.ascontiguousarray(decisions), pred[:, 1], pred[:, 0]
            )
        survflat = survivors.reshape(-1)
        decoder._fused_survivors = None
        decoder._fused_survivors_key = None
        step_words = n_frames * n_states
        itype = (
            np.int32
            if n_steps * step_words <= np.iinfo(np.int32).max
            else np.int64
        )
        taus = np.arange(n_lead)
        states = best[taus + depth - 1].astype(survivors.dtype)  # (lead, F)
        # Flat word offset of (t, frame, state=0), walked back one
        # trellis step per level; each level is then a single
        # offset-add + flat gather.
        base = (
            (taus[:, np.newaxis] + depth - 1) * step_words
            + np.arange(n_frames)[np.newaxis, :] * n_states
        ).astype(itype)
        idx = np.empty_like(base)
        for _ in range(depth - 1):
            np.add(base, states, out=idx)
            np.take(survflat, idx, out=states)
            base -= step_words
        bits[:, :n_lead] = ((states >> shift) & 1).astype(np.int8).T

    # Final walk for the last depth-1 bits (or all bits when the frame
    # is shorter than the trace-back depth).
    frame_idx = np.arange(n_frames)
    states = best[n_steps - 1]
    stop = max(n_lead, 0)
    for tau in range(n_steps - 1, stop - 1, -1):
        bits[:, tau] = ((states >> shift) & 1).astype(np.int8)
        slots = decisions[tau, frame_idx, states]
        states = predecessors[states, slots]
    return bits
