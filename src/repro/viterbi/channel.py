"""BPSK modulation over an AWGN channel.

The paper measures decoder BER by software simulation of an additive
white Gaussian noise channel (the model for atmospheric/environmental
noise in satellite and cable links, Sec. 3.1).  Channel quality is
parameterized by the per-symbol energy-to-noise-density ratio
``Es/N0``; Table 3 specifies BER targets "at Es/N0 = 1.0" (linear, i.e.
0 dB), so both linear and dB entry points are provided.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, make_rng


def es_n0_db_to_linear(es_n0_db: float) -> float:
    """Convert an Es/N0 value in dB to the linear ratio."""
    return 10.0 ** (es_n0_db / 10.0)


def es_n0_linear_to_db(es_n0: float) -> float:
    """Convert a linear Es/N0 ratio to dB."""
    if es_n0 <= 0:
        raise ConfigurationError("Es/N0 must be positive")
    return 10.0 * math.log10(es_n0)


def noise_sigma(es_n0_db: float) -> float:
    """Noise standard deviation for unit-energy BPSK symbols.

    With symbol energy ``Es = 1`` and two-sided noise density ``N0/2``,
    the per-sample Gaussian noise variance is ``N0/2 = 1/(2 Es/N0)``.
    """
    return math.sqrt(1.0 / (2.0 * es_n0_db_to_linear(es_n0_db)))


def bpsk_modulate(symbols: np.ndarray) -> np.ndarray:
    """Map channel bits to antipodal amplitudes: 0 -> +1, 1 -> -1."""
    symbols = np.asarray(symbols)
    return 1.0 - 2.0 * symbols.astype(float)


@dataclass
class AWGNChannel:
    """An additive white Gaussian noise channel at a fixed Es/N0.

    The channel knows its own noise level; decoders with *adaptive*
    quantization read :attr:`sigma` to place their decision levels
    (paper Fig. 4), while *fixed* quantization ignores it.
    """

    es_n0_db: float

    def __post_init__(self) -> None:
        self.sigma = noise_sigma(self.es_n0_db)

    @classmethod
    def from_linear(cls, es_n0: float) -> "AWGNChannel":
        """Build a channel from a linear Es/N0 ratio (paper's Table 3 units)."""
        return cls(es_n0_linear_to_db(es_n0))

    def transmit(self, symbols: np.ndarray, rng: SeedLike = None) -> np.ndarray:
        """Modulate 0/1 channel symbols and add Gaussian noise."""
        generator = make_rng(rng)
        clean = bpsk_modulate(symbols)
        return clean + generator.normal(0.0, self.sigma, size=clean.shape)

    def uncoded_ber(self) -> float:
        """Theoretical uncoded BPSK bit error rate ``Q(sqrt(2 Es/N0))``.

        Useful as a sanity reference for the coded simulations.
        """
        ratio = es_n0_db_to_linear(self.es_n0_db)
        return 0.5 * math.erfc(math.sqrt(ratio))
