"""Additional channel models beyond AWGN.

The paper simulates the AWGN channels of satellite and cable links
(Sec. 3.1).  A deployable Viterbi MetaCore also gets characterized on
harsher channels; this module adds the two standard ones:

- :class:`BinarySymmetricChannel` — the hard abstraction: each channel
  symbol flips with probability p.  Useful for analytic cross-checks
  (the union bound's binomial P2 is exact here).
- :class:`RayleighFadingChannel` — flat Rayleigh fading with AWGN and
  perfect channel-state information at the receiver: each symbol is
  scaled by a Rayleigh amplitude; with CSI the receiver divides it out,
  which leaves Gaussian noise of per-symbol varying variance.  An
  optional block-fading mode holds the amplitude constant over bursts.

All channels share the AWGN channel's interface (``transmit`` + a
``sigma`` the adaptive quantizer reads), so every decoder in the
library runs on them unchanged.  :class:`AWGNChannel` itself is
re-exported here so this module is the one-stop import for every
channel model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, make_rng
from repro.viterbi.channel import (
    AWGNChannel,
    bpsk_modulate,
    es_n0_db_to_linear,
    noise_sigma,
)

__all__ = [
    "AWGNChannel",
    "BinarySymmetricChannel",
    "RayleighFadingChannel",
]


@dataclass
class BinarySymmetricChannel:
    """Flip each channel symbol independently with probability p.

    Outputs antipodal levels (+1/−1) so hard quantization recovers the
    flipped bits; soft decoders see it as a clipped channel.
    """

    crossover: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.crossover <= 0.5:
            raise ConfigurationError("crossover probability outside [0, 0.5]")
        #: No meaningful noise scale: hard levels only.
        self.sigma = 1e-3

    def transmit(self, symbols: np.ndarray, rng: SeedLike = None) -> np.ndarray:
        """Transmit 0/1 symbols, flipping each with the crossover rate."""
        generator = make_rng(rng)
        symbols = np.asarray(symbols)
        flips = generator.random(symbols.shape) < self.crossover
        return bpsk_modulate(symbols ^ flips.astype(symbols.dtype))

    @classmethod
    def equivalent_to_awgn(cls, es_n0_db: float) -> "BinarySymmetricChannel":
        """The BSC a hard-quantized AWGN channel at Es/N0 becomes."""
        ratio = es_n0_db_to_linear(es_n0_db)
        crossover = 0.5 * math.erfc(math.sqrt(ratio))
        return cls(crossover)


@dataclass
class RayleighFadingChannel:
    """Flat Rayleigh fading + AWGN with perfect CSI equalization.

    ``es_n0_db`` is the *average* symbol energy to noise density ratio;
    the Rayleigh amplitudes are normalized to unit mean-square power.
    ``coherence_symbols`` > 1 selects block fading: the amplitude holds
    for bursts of that many symbols (correlated deep fades are what
    make fading hard for convolutional codes).
    """

    es_n0_db: float
    coherence_symbols: int = 1

    def __post_init__(self) -> None:
        if self.coherence_symbols < 1:
            raise ConfigurationError("coherence length must be >= 1 symbol")
        self.sigma = noise_sigma(self.es_n0_db)

    def _amplitudes(
        self, shape: tuple, generator: np.random.Generator
    ) -> np.ndarray:
        n_total = int(np.prod(shape))
        n_blocks = -(-n_total // self.coherence_symbols)
        # Rayleigh with E[h^2] = 1  =>  scale = 1/sqrt(2).
        block_amps = generator.rayleigh(
            scale=1.0 / math.sqrt(2.0), size=n_blocks
        )
        amps = np.repeat(block_amps, self.coherence_symbols)[:n_total]
        return amps.reshape(shape)

    def transmit(self, symbols: np.ndarray, rng: SeedLike = None) -> np.ndarray:
        """Fade, add noise, and equalize with the known amplitude.

        With perfect CSI the receiver computes ``y / h``; the result is
        the clean antipodal symbol plus noise of variance
        ``sigma^2 / h^2`` — deep fades show up as locally huge noise,
        which is exactly what the decoder must ride out.
        """
        generator = make_rng(rng)
        clean = bpsk_modulate(np.asarray(symbols))
        amplitudes = self._amplitudes(clean.shape, generator)
        # Guard against pathological zero fades (probability ~0, but a
        # divide-by-zero would poison the batch).
        amplitudes = np.maximum(amplitudes, 1e-6)
        noise = generator.normal(0.0, self.sigma, size=clean.shape)
        return clean + noise / amplitudes

    def average_uncoded_ber(self) -> float:
        """Closed-form uncoded BPSK BER on Rayleigh with matched CSI.

        ``0.5 (1 - sqrt(g/(1+g)))`` with g the average Es/N0 — decaying
        only as 1/SNR, vs exponentially on AWGN.
        """
        gamma = es_n0_db_to_linear(self.es_n0_db)
        return 0.5 * (1.0 - math.sqrt(gamma / (1.0 + gamma)))
