"""Textual diagrams of convolutional encoders (paper Fig. 2).

The paper's Fig. 2 draws the K=3, G=(7,5) encoder as a shift register
feeding XOR trees.  This module renders the same picture for any code
in plain text — handy in reports and as the runnable counterpart of a
figure that carries no measured data.
"""

from __future__ import annotations

from typing import List

from repro.viterbi.encoder import ConvolutionalEncoder


def encoder_diagram(encoder: ConvolutionalEncoder) -> str:
    """ASCII rendition of the encoder's register and XOR taps.

    One column per register stage (the current input ``u`` followed by
    the ``K-1`` memory bits), one row per generator polynomial, with an
    ``x`` marking each tap.
    """
    k = encoder.constraint_length
    stages = ["u"] + [f"R{i}" for i in range(1, k)]
    width = 4
    lines: List[str] = []
    lines.append(
        f"rate 1/{encoder.n_outputs} convolutional encoder, K={k}, "
        f"G=({','.join(format(p, 'o') for p in encoder.polynomials)}) octal"
    )
    lines.append("")
    header = "input ->" + "".join(f"[{s:^{width - 2}s}]" for s in stages)
    lines.append(header)
    offset = len("input ->")
    for j, poly in enumerate(encoder.polynomials):
        taps = []
        for stage in range(k):
            bit_position = k - 1 - stage  # MSB taps the current input
            taps.append("x" if poly >> bit_position & 1 else " ")
        row = " " * offset + "".join(f"  {t} " for t in taps)
        lines.append(row + f"  --XOR--> c{j}")
    lines.append("")
    lines.append(
        "each input bit shifts in from the left; every 'x' column feeds "
        "that row's XOR"
    )
    return "\n".join(lines)


def trellis_section_diagram(encoder: ConvolutionalEncoder) -> str:
    """One trellis section as text (the Fig. 3 companion).

    Lists, for each current state, both outgoing branches with their
    input bit and channel symbols.
    """
    lines = [f"one trellis section ({encoder.n_states} states):"]
    for state in range(encoder.n_states):
        for bit in (0, 1):
            nxt = encoder.next_state(state, bit)
            symbols = "".join(
                str(s) for s in encoder.output_symbols(state, bit)
            )
            edge = "----" if bit else "- - "
            lines.append(
                f"  {state:0{max(encoder.constraint_length - 1, 1)}b} "
                f"{edge}[{bit}/{symbols}]{edge}> "
                f"{nxt:0{max(encoder.constraint_length - 1, 1)}b}"
            )
    return "\n".join(lines)
