"""Standard convolutional-code generator polynomials.

The paper fixes the encoder polynomial ``G`` to the published
maximal-free-distance generators for each constraint length (Table 3
uses ``7,5`` for K=3, ``35,23`` for K=5 and ``171,133`` for K=7).  These
are the classic rate-1/2 codes tabulated by Larsen [Lar73] and
Odenwalder [Ode70]; we ship them as the library defaults and also accept
arbitrary user-supplied polynomials.

Polynomials are written in octal, most-significant bit corresponding to
the *current* input bit, as is conventional in the coding literature.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.errors import ConfigurationError

#: Best-known rate-1/2 generator polynomials (octal) per constraint length.
BEST_RATE_HALF: Dict[int, Tuple[int, int]] = {
    3: (0o7, 0o5),
    4: (0o17, 0o15),
    5: (0o35, 0o23),
    6: (0o75, 0o53),
    7: (0o171, 0o133),
    8: (0o371, 0o247),
    9: (0o753, 0o561),
}

#: Best-known rate-1/3 generator polynomials (octal) per constraint length.
BEST_RATE_THIRD: Dict[int, Tuple[int, int, int]] = {
    3: (0o7, 0o7, 0o5),
    4: (0o17, 0o15, 0o13),
    5: (0o37, 0o33, 0o25),
    6: (0o75, 0o53, 0o47),
    7: (0o171, 0o165, 0o133),
    8: (0o367, 0o331, 0o225),
    9: (0o711, 0o663, 0o557),
}


def parse_octal(text: str) -> int:
    """Parse a polynomial written in octal text form (e.g. ``"171"``)."""
    try:
        return int(text, 8)
    except ValueError as exc:
        raise ConfigurationError(f"not an octal polynomial: {text!r}") from exc


def to_octal(poly: int) -> str:
    """Render a polynomial integer in the conventional octal notation."""
    if poly < 0:
        raise ConfigurationError("polynomials must be non-negative")
    return format(poly, "o")


def default_polynomials(constraint_length: int, rate_inverse: int = 2) -> Tuple[int, ...]:
    """Return the best-known generators for ``constraint_length``.

    ``rate_inverse`` is ``n`` in the code rate ``1/n``; the library ships
    tables for rates 1/2 and 1/3.
    """
    if rate_inverse == 2:
        table: Dict[int, Tuple[int, ...]] = BEST_RATE_HALF
    elif rate_inverse == 3:
        table = BEST_RATE_THIRD
    else:
        raise ConfigurationError(
            f"no built-in polynomial table for rate 1/{rate_inverse}"
        )
    try:
        return table[constraint_length]
    except KeyError as exc:
        raise ConfigurationError(
            f"no built-in rate 1/{rate_inverse} polynomials for K="
            f"{constraint_length}; supply explicit generators"
        ) from exc


def validate_polynomials(
    polynomials: Sequence[int], constraint_length: int
) -> Tuple[int, ...]:
    """Validate generators against a constraint length.

    Each polynomial must fit in ``constraint_length`` bits and the
    leading (current-input) tap must be present in at least one
    generator, otherwise the encoder would ignore its input.
    """
    polys = tuple(int(p) for p in polynomials)
    if not polys:
        raise ConfigurationError("at least one generator polynomial required")
    limit = 1 << constraint_length
    for poly in polys:
        if poly <= 0:
            raise ConfigurationError(f"polynomial {poly} must be positive")
        if poly >= limit:
            raise ConfigurationError(
                f"polynomial {to_octal(poly)} (octal) does not fit in "
                f"K={constraint_length} bits"
            )
    top_tap = 1 << (constraint_length - 1)
    if not any(poly & top_tap for poly in polys):
        raise ConfigurationError(
            "no generator taps the current input bit; the code would be "
            "catastrophically degenerate"
        )
    return polys
