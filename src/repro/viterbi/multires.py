"""Multiresolution Viterbi decoding — the paper's new algorithm (Sec. 3.3).

The key observation: at any instant only a few trellis states are
realistic trace-back candidates.  The decoder therefore updates the
whole trellis with cheap *low-resolution* branch metrics (``R1`` bits,
typically hard 1-bit decisions) and then *recomputes* the branch metrics
of the ``M`` states with the smallest accumulated errors using
*high-resolution* quantization (``R2`` bits, fixed or adaptive).  This
buys most of the BER benefit of soft decoding while the wide datapath
only ever touches ``M`` of the ``2**(K-1)`` states.

Because low- and high-resolution metrics live on different scales, a
*correction term* keeps the accumulated errors of recomputed and
non-recomputed states comparable.  Following the paper, the correction
at each step is the difference between the best high-resolution and the
best low-resolution branch metric, optionally averaged over the ``N``
best candidates (the design-space parameter ``N``); we additionally
implement a scale-then-offset variant and a no-normalization ablation.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.viterbi import kernels
from repro.viterbi.decoder import ViterbiDecoder
from repro.viterbi.metrics import shared_metric_table
from repro.viterbi.quantize import Quantizer
from repro.viterbi.trellis import Trellis

#: Supported normalization methods for the ``N`` design parameter.
NORMALIZATION_METHODS = ("offset", "scale-offset", "none")


class MultiresolutionViterbiDecoder(ViterbiDecoder):
    """Viterbi decoder with per-step high-resolution path recomputation.

    Parameters
    ----------
    trellis:
        Precomputed code trellis.
    low_quantizer:
        ``R1``-bit quantizer used for the full trellis update.
    high_quantizer:
        ``R2``-bit quantizer used to recompute the best paths.
    traceback_depth:
        ``L``, as in :class:`ViterbiDecoder`.
    multires_paths:
        ``M`` — how many of the best states are recomputed each step
        (``1 <= M <= 2**(K-1)``).
    normalization_count:
        ``N`` — how many of the best branch-metric differences are
        averaged into the correction term (``1 <= N <= M``).
    normalization_method:
        ``"scale-offset"`` (default: rescale high-res metrics to the
        low-res range, then apply the paper's difference-of-best
        correction), ``"offset"`` (the difference-of-best correction
        alone), or ``"none"`` (ablation; demonstrably catastrophic,
        which is why the paper insists on the correction term).
    kernel:
        ``"fused"`` or ``"reference"``, as in :class:`ViterbiDecoder`;
        both produce bit-identical outputs.
    """

    def __init__(
        self,
        trellis: Trellis,
        low_quantizer: Quantizer,
        high_quantizer: Quantizer,
        traceback_depth: int,
        multires_paths: int,
        normalization_count: int = 1,
        normalization_method: str = "scale-offset",
        kernel: str = "fused",
    ) -> None:
        super().__init__(trellis, low_quantizer, traceback_depth, kernel=kernel)
        if high_quantizer.bits <= low_quantizer.bits:
            raise ConfigurationError(
                "high-resolution quantizer must use more bits than the "
                "low-resolution one"
            )
        if not 1 <= multires_paths <= trellis.n_states:
            raise ConfigurationError(
                f"multires paths must lie in [1, {trellis.n_states}]"
            )
        if not 1 <= normalization_count <= multires_paths:
            raise ConfigurationError(
                "normalization count must lie in [1, multires_paths]"
            )
        if normalization_method not in NORMALIZATION_METHODS:
            raise ConfigurationError(
                f"normalization method must be one of {NORMALIZATION_METHODS}"
            )
        self.low_quantizer = low_quantizer
        self.high_quantizer = high_quantizer
        self.multires_paths = int(multires_paths)
        self.normalization_count = int(normalization_count)
        self.normalization_method = normalization_method
        self.high_metric_table = shared_metric_table(trellis, high_quantizer)
        # Static scale aligning the high-resolution metric range with
        # the low-resolution one (used by the "scale-offset" method).
        self._scale = (
            self.metric_table.max_branch_metric
            / self.high_metric_table.max_branch_metric
        )

    # ------------------------------------------------------------------

    def _correction(
        self,
        low_best: np.ndarray,
        high_best: np.ndarray,
        order: np.ndarray,
    ) -> np.ndarray:
        """Per-frame correction term from the N best candidates.

        ``low_best``/``high_best`` have shape ``(frames, M)`` holding the
        winning branch metric of each recomputed state under each
        resolution; ``order`` ranks the M states by accumulated error.
        """
        n = self.normalization_count
        take = np.take_along_axis
        low_sel = take(low_best, order[:, :n], axis=1)
        high_sel = take(high_best, order[:, :n], axis=1)
        return (high_sel - low_sel).mean(axis=1, keepdims=True)

    def _fused_available(self) -> bool:
        """Both resolutions need their lookup tables precomputed."""
        return (
            self.metric_table.combo_lut() is not None
            and self.high_metric_table.combo_lut(erasure_masked=False)
            is not None
        )

    def _forward_fused(
        self, received: np.ndarray, sigma: Optional[float]
    ) -> Tuple[np.ndarray, np.ndarray]:
        return kernels.fused_forward_multires(self, received, sigma)

    def _forward_reference(
        self, received: np.ndarray, sigma: Optional[float]
    ) -> Tuple[np.ndarray, np.ndarray]:
        n_frames, n_steps, _ = received.shape
        low_levels = self.low_quantizer.quantize(received, sigma)
        high_levels = self.high_quantizer.quantize(received, sigma)
        predecessors = self.trellis.predecessors
        n_states = self.trellis.n_states
        m = self.multires_paths
        acc = self._initial_metrics(n_frames)
        decisions = np.empty((n_steps, n_frames, n_states), dtype=np.uint8)
        best = np.empty((n_steps, n_frames), dtype=np.int64)
        frame_col = np.arange(n_frames)[:, np.newaxis]
        if m == n_states:
            # Every state is recomputed: the selection is a constant.
            all_states = np.broadcast_to(
                np.arange(n_states), (n_frames, n_states)
            ).copy()
        hook = self.fault_hook
        if hook is not None and not getattr(hook, "active", True):
            hook = None  # inert injector: skip the per-step calls entirely
        for t in range(n_steps):
            # --- low-resolution update of the full trellis ------------
            low_metrics = self.metric_table.compute(low_levels[:, t, :])
            if hook is not None:
                low_metrics = hook.on_branch_metrics(low_metrics)
            candidates = acc[:, predecessors] + low_metrics
            slots = np.argmin(candidates, axis=2)
            new_acc = np.take_along_axis(
                candidates, slots[:, :, np.newaxis], axis=2
            )[:, :, 0]

            # --- select the M most promising states -------------------
            if m < n_states:
                chosen = np.argpartition(new_acc, m - 1, axis=1)[:, :m]
            else:
                chosen = all_states
            # Rank the chosen states so the correction can use the N best.
            chosen_acc = np.take_along_axis(new_acc, chosen, axis=1)
            order = np.argsort(chosen_acc, axis=1)

            # --- high-resolution recomputation -------------------------
            high_metrics = self.high_metric_table.compute_for_states(
                high_levels[:, t, :], chosen
            )  # (frames, m, 2)
            if hook is not None:
                high_metrics = hook.on_branch_metrics(high_metrics)
            if self.normalization_method == "scale-offset":
                high_metrics = high_metrics * self._scale
            low_chosen = np.take_along_axis(
                low_metrics,
                chosen[:, :, np.newaxis].repeat(2, axis=2),
                axis=1,
            )
            if self.normalization_method != "none":
                correction = self._correction(
                    low_chosen.min(axis=2), high_metrics.min(axis=2), order
                )
                high_metrics = high_metrics - correction[:, :, np.newaxis]

            prev_chosen = predecessors[chosen]  # (frames, m, 2)
            cand_high = acc[frame_col, prev_chosen.reshape(n_frames, -1)]
            cand_high = cand_high.reshape(n_frames, m, 2) + high_metrics
            slot_high = np.argmin(cand_high, axis=2)
            val_high = np.take_along_axis(
                cand_high, slot_high[:, :, np.newaxis], axis=2
            )[:, :, 0]

            # --- merge recomputed states back --------------------------
            np.put_along_axis(new_acc, chosen, val_high, axis=1)
            slots_merged = slots.astype(np.uint8)
            np.put_along_axis(
                slots_merged, chosen, slot_high.astype(np.uint8), axis=1
            )

            if hook is not None:
                new_acc = hook.on_path_metrics(new_acc)
            decisions[t] = slots_merged
            best[t] = np.argmin(new_acc, axis=1)
            new_acc -= new_acc.min(axis=1, keepdims=True)
            acc = new_acc
        self._final_metrics = acc
        return decisions, best

    def describe(self) -> str:
        """One-line summary used in experiment reports and seeds."""
        return (
            f"MultiresViterbi(K={self.trellis.constraint_length}, "
            f"L={self.traceback_depth}, "
            f"R1={self.low_quantizer.bits}bit, "
            f"R2={self.high_quantizer.bits}bit, "
            f"M={self.multires_paths}, N={self.normalization_count}, "
            f"norm={self.normalization_method})"
        )
