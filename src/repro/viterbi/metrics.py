"""Branch-metric computation.

A branch metric measures the disagreement between the received
(quantized) channel symbols and the symbols a trellis branch would have
produced.  With ``q``-bit quantization to levels ``0 .. 2**q - 1``, the
metric for one symbol is the absolute distance between the received
level and the ideal level for the branch's expected bit.  For ``q = 1``
this is exactly the Hamming distance of classic hard-decision decoding
(paper Sec. 3.2), so one implementation covers both hard and soft
decoding.
"""

from __future__ import annotations

import threading
from typing import Dict, Tuple

import numpy as np

from repro.viterbi.quantize import Quantizer
from repro.viterbi.trellis import Trellis


class BranchMetricTable:
    """Precomputed ideal levels for every trellis branch at one resolution.

    Parameters
    ----------
    trellis:
        The code trellis (supplies expected 0/1 symbols per branch).
    quantizer:
        The quantizer whose level scale the metrics live on.
    """

    def __init__(self, trellis: Trellis, quantizer: Quantizer) -> None:
        self.trellis = trellis
        self.quantizer = quantizer
        # ideal[s, slot, k]: the level symbol k of branch (s, slot) maps
        # to under noiseless conditions.  bit 0 -> max level, bit 1 -> 0.
        bits = trellis.branch_symbols.astype(np.int64)
        self.ideal_levels = quantizer.max_level * (1 - bits)
        #: Largest possible metric for a single branch.
        self.max_branch_metric = quantizer.max_level * trellis.n_symbols

    def compute(self, levels: np.ndarray) -> np.ndarray:
        """Branch metrics for a batch of received symbol tuples.

        ``levels`` has shape ``(..., n_symbols)`` (quantized integer
        levels); the result has shape ``(..., n_states, 2)`` giving the
        metric of each (state, branch-slot) pair.  Erased symbols
        (:data:`~repro.viterbi.quantize.ERASURE_LEVEL`) contribute
        nothing — the depunctured positions of a punctured code carry
        no channel information.
        """
        levels = np.asarray(levels)
        # (..., 1, 1, n) against (S, 2, n) broadcasts to (..., S, 2, n).
        expanded = levels[..., np.newaxis, np.newaxis, :]
        diff = np.abs(expanded - self.ideal_levels)
        if (levels < 0).any():
            diff = np.where(expanded < 0, 0, diff)
        return diff.sum(axis=-1)

    def compute_for_states(
        self, levels: np.ndarray, states: np.ndarray
    ) -> np.ndarray:
        """Branch metrics restricted to a per-frame subset of states.

        ``levels`` has shape ``(frames, n_symbols)`` and ``states``
        shape ``(frames, m)``; the result has shape ``(frames, m, 2)``.
        This is the high-resolution recomputation path of the
        multiresolution decoder, which touches only the ``M`` most
        promising states.
        """
        levels = np.asarray(levels)
        ideal = self.ideal_levels[states]  # (frames, m, 2, n)
        diff = np.abs(levels[:, np.newaxis, np.newaxis, :] - ideal)
        return diff.sum(axis=-1)


_TABLE_CACHE: Dict[Tuple, BranchMetricTable] = {}
_TABLE_LOCK = threading.Lock()


def shared_metric_table(
    trellis: Trellis, quantizer: Quantizer
) -> BranchMetricTable:
    """A memoized :class:`BranchMetricTable` for a (code, quantizer) pair.

    Design points differing only in ``L``/``M`` share a code and a
    quantizer spec, so their (identical) metric tables are built once
    and shared.  The table is read-only after construction, which makes
    the shared instance safe; quantizers whose
    :meth:`~repro.viterbi.quantize.Quantizer.cache_key` is ``None``
    (unknown subclasses) always get a fresh table.
    """
    spec = quantizer.cache_key()
    if spec is None:
        return BranchMetricTable(trellis, quantizer)
    key = (trellis.cache_key(), spec)
    with _TABLE_LOCK:
        table = _TABLE_CACHE.get(key)
        if table is None:
            table = BranchMetricTable(trellis, quantizer)
            _TABLE_CACHE[key] = table
    return table
