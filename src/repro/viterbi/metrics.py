"""Branch-metric computation.

A branch metric measures the disagreement between the received
(quantized) channel symbols and the symbols a trellis branch would have
produced.  With ``q``-bit quantization to levels ``0 .. 2**q - 1``, the
metric for one symbol is the absolute distance between the received
level and the ideal level for the branch's expected bit.  For ``q = 1``
this is exactly the Hamming distance of classic hard-decision decoding
(paper Sec. 3.2), so one implementation covers both hard and soft
decoding.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

import numpy as np

from repro.viterbi.quantize import Quantizer
from repro.viterbi.trellis import Trellis

#: Upper bound on precomputed branch-metric lookup entries
#: (``level combos x states x 2``); tables beyond it (exotic
#: high-resolution / high-rate codes) fall back to per-step metric
#: computation instead of risking a multi-hundred-MB allocation.
MAX_COMBO_LUT_ENTRIES = 1 << 22

#: Level-combination rows built per slab while filling a lookup table,
#: bounding the transient ``(rows, states, 2, n_symbols)`` workspace.
_COMBO_LUT_SLAB = 1 << 16


class BranchMetricTable:
    """Precomputed ideal levels for every trellis branch at one resolution.

    Parameters
    ----------
    trellis:
        The code trellis (supplies expected 0/1 symbols per branch).
    quantizer:
        The quantizer whose level scale the metrics live on.
    """

    def __init__(self, trellis: Trellis, quantizer: Quantizer) -> None:
        self.trellis = trellis
        self.quantizer = quantizer
        # ideal[s, slot, k]: the level symbol k of branch (s, slot) maps
        # to under noiseless conditions.  bit 0 -> max level, bit 1 -> 0.
        bits = trellis.branch_symbols.astype(np.int64)
        self.ideal_levels = quantizer.max_level * (1 - bits)
        #: Largest possible metric for a single branch.
        self.max_branch_metric = quantizer.max_level * trellis.n_symbols
        # Lazily built combo lookup tables, keyed by erasure handling
        # (see combo_lut).  Shared tables share their LUTs.
        self._combo_luts: Dict[bool, Optional[np.ndarray]] = {}

    def compute(self, levels: np.ndarray) -> np.ndarray:
        """Branch metrics for a batch of received symbol tuples.

        ``levels`` has shape ``(..., n_symbols)`` (quantized integer
        levels); the result has shape ``(..., n_states, 2)`` giving the
        metric of each (state, branch-slot) pair.  Erased symbols
        (:data:`~repro.viterbi.quantize.ERASURE_LEVEL`) contribute
        nothing — the depunctured positions of a punctured code carry
        no channel information.
        """
        levels = np.asarray(levels)
        # (..., 1, 1, n) against (S, 2, n) broadcasts to (..., S, 2, n).
        expanded = levels[..., np.newaxis, np.newaxis, :]
        diff = np.abs(expanded - self.ideal_levels)
        if (levels < 0).any():
            diff = np.where(expanded < 0, 0, diff)
        return diff.sum(axis=-1)

    def compute_for_states(
        self, levels: np.ndarray, states: np.ndarray
    ) -> np.ndarray:
        """Branch metrics restricted to a per-frame subset of states.

        ``levels`` has shape ``(frames, n_symbols)`` and ``states``
        shape ``(frames, m)``; the result has shape ``(frames, m, 2)``.
        This is the high-resolution recomputation path of the
        multiresolution decoder, which touches only the ``M`` most
        promising states.
        """
        levels = np.asarray(levels)
        ideal = self.ideal_levels[states]  # (frames, m, 2, n)
        diff = np.abs(levels[:, np.newaxis, np.newaxis, :] - ideal)
        return diff.sum(axis=-1)

    def combo_lut(self, erasure_masked: bool = True) -> Optional[np.ndarray]:
        """Branch metrics for *every* possible received symbol tuple.

        The fused decode kernels (:mod:`repro.viterbi.kernels`) replace
        the per-trellis-step call to :meth:`compute` with one gather
        from this table.  Row ``i`` holds the ``(n_states, 2)`` metrics
        of the level tuple whose mixed-radix index is ``i`` in base
        ``quantizer.lut_base`` (symbol 0 is the most significant digit;
        digit 0 is the erasure sentinel, digit ``d`` is level ``d - 1``).

        ``erasure_masked=True`` reproduces :meth:`compute` exactly
        (erased symbols contribute nothing); ``erasure_masked=False``
        reproduces :meth:`compute_for_states`, which takes the raw
        absolute distance — the two must stay distinct so the fused
        multiresolution kernel is bit-identical to the reference loop.

        Returns ``None`` (and the caller falls back to the reference
        loop) when the table would exceed
        :data:`MAX_COMBO_LUT_ENTRIES`.  The result is cached on the
        table, so shared tables build each variant once.
        """
        key = bool(erasure_masked)
        cached = self._combo_luts.get(key, False)
        if cached is not False:
            return cached
        base = self.quantizer.lut_base
        n = self.trellis.n_symbols
        combos = base**n
        if combos * self.trellis.n_states * 2 > MAX_COMBO_LUT_ENTRIES:
            self._combo_luts[key] = None
            return None
        lut = np.empty(
            (combos, self.trellis.n_states, 2), dtype=np.int64
        )
        for start in range(0, combos, _COMBO_LUT_SLAB):
            stop = min(start + _COMBO_LUT_SLAB, combos)
            index = np.arange(start, stop, dtype=np.int64)
            levels = np.empty((stop - start, n), dtype=np.int64)
            for k in range(n - 1, -1, -1):
                levels[:, k] = index % base - 1
                index = index // base
            if erasure_masked:
                lut[start:stop] = self.compute(levels)
            else:
                diff = np.abs(
                    levels[:, np.newaxis, np.newaxis, :] - self.ideal_levels
                )
                lut[start:stop] = diff.sum(axis=-1)
        self._combo_luts[key] = lut
        return lut


_TABLE_CACHE: Dict[Tuple, BranchMetricTable] = {}
_TABLE_LOCK = threading.Lock()


def shared_metric_table(
    trellis: Trellis, quantizer: Quantizer
) -> BranchMetricTable:
    """A memoized :class:`BranchMetricTable` for a (code, quantizer) pair.

    Design points differing only in ``L``/``M`` share a code and a
    quantizer spec, so their (identical) metric tables are built once
    and shared.  The table is read-only after construction, which makes
    the shared instance safe; quantizers whose
    :meth:`~repro.viterbi.quantize.Quantizer.cache_key` is ``None``
    (unknown subclasses) always get a fresh table.
    """
    spec = quantizer.cache_key()
    if spec is None:
        return BranchMetricTable(trellis, quantizer)
    key = (trellis.cache_key(), spec)
    with _TABLE_LOCK:
        table = _TABLE_CACHE.get(key)
        if table is None:
            table = BranchMetricTable(trellis, quantizer)
            _TABLE_CACHE[key] = table
    return table
