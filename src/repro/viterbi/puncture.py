"""Punctured convolutional codes.

The paper's preliminaries define the general code rate ``k/n``
(Sec. 3.1); practical Viterbi cores reach rates above the mother code's
1/n by *puncturing* — periodically deleting encoder output symbols
according to a fixed pattern.  The decoder re-inserts the deleted
positions as *erasures* (NaN analog samples), which the branch metrics
ignore (:mod:`repro.viterbi.metrics`), so the same trellis decodes all
punctured rates.

The shipped patterns are the de-facto standard ones used with the
K=7 (171,133) code in DVB and related systems.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Dict, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PuncturePattern:
    """A periodic keep/delete mask over encoder output symbols.

    ``mask`` has shape ``(period, n_symbols)``; a 1 keeps the symbol, a
    0 deletes it.  The punctured code rate is
    ``period / sum(mask)`` (input bits per transmitted symbol).
    """

    name: str
    mask: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if not self.mask or not self.mask[0]:
            raise ConfigurationError("empty puncture mask")
        width = len(self.mask[0])
        if any(len(row) != width for row in self.mask):
            raise ConfigurationError("ragged puncture mask")
        flat = [bit for row in self.mask for bit in row]
        if any(bit not in (0, 1) for bit in flat):
            raise ConfigurationError("puncture mask must be 0/1")
        if sum(flat) == 0:
            raise ConfigurationError("puncture mask deletes everything")
        if any(sum(row) == 0 for row in self.mask):
            raise ConfigurationError(
                "a puncture row deletes every symbol of one input bit"
            )

    @property
    def period(self) -> int:
        return len(self.mask)

    @property
    def n_symbols(self) -> int:
        return len(self.mask[0])

    @property
    def kept_per_period(self) -> int:
        return sum(bit for row in self.mask for bit in row)

    @property
    def rate(self) -> Tuple[int, int]:
        """Punctured code rate (k, n) in lowest terms."""
        k, n = self.period, self.kept_per_period
        divisor = gcd(k, n)
        return k // divisor, n // divisor

    def mask_array(self, n_steps: int) -> np.ndarray:
        """Boolean keep-mask of shape ``(n_steps, n_symbols)``."""
        base = np.asarray(self.mask, dtype=bool)
        repeats = -(-n_steps // self.period)  # ceil
        return np.tile(base, (repeats, 1))[:n_steps]

    # ------------------------------------------------------------------

    def puncture(self, symbols: np.ndarray) -> np.ndarray:
        """Delete masked symbols: ``(..., steps, n)`` -> ``(..., kept)``.

        Requires ``steps`` to be a multiple of the pattern period so
        every frame carries a whole number of puncturing cycles.
        """
        symbols = np.asarray(symbols)
        steps, width = symbols.shape[-2], symbols.shape[-1]
        if width != self.n_symbols:
            raise ConfigurationError(
                f"pattern expects {self.n_symbols} symbols per step"
            )
        if steps % self.period:
            raise ConfigurationError(
                f"frame length {steps} not a multiple of period {self.period}"
            )
        keep = self.mask_array(steps)
        flat = symbols.reshape(symbols.shape[:-2] + (steps * width,))
        return flat[..., keep.reshape(-1)]

    def depuncture(self, received: np.ndarray, n_steps: int) -> np.ndarray:
        """Re-insert erasures: ``(..., kept)`` -> ``(..., steps, n)``.

        Deleted positions become NaN, which quantizers map to the
        erasure level and branch metrics skip.
        """
        received = np.asarray(received, dtype=float)
        keep = self.mask_array(n_steps).reshape(-1)
        expected = int(keep.sum())
        if received.shape[-1] != expected:
            raise ConfigurationError(
                f"expected {expected} received symbols, got "
                f"{received.shape[-1]}"
            )
        out = np.full(received.shape[:-1] + (keep.size,), np.nan)
        out[..., keep] = received
        return out.reshape(
            received.shape[:-1] + (n_steps, self.n_symbols)
        )


#: Standard rate-compatible patterns for rate-1/2 mother codes (the
#: DVB-S set used with the K=7 (171,133) code).
STANDARD_PATTERNS: Dict[str, PuncturePattern] = {
    "1/2": PuncturePattern("1/2", ((1, 1),)),
    "2/3": PuncturePattern("2/3", ((1, 1), (0, 1))),
    "3/4": PuncturePattern("3/4", ((1, 1), (0, 1), (1, 0))),
    "5/6": PuncturePattern(
        "5/6", ((1, 1), (0, 1), (1, 0), (0, 1), (1, 0))
    ),
    "7/8": PuncturePattern(
        "7/8",
        ((1, 1), (0, 1), (0, 1), (0, 1), (1, 0), (0, 1), (1, 0)),
    ),
}


def standard_pattern(rate: str) -> PuncturePattern:
    """Look up one of the standard patterns by rate string."""
    try:
        return STANDARD_PATTERNS[rate]
    except KeyError as exc:
        raise ConfigurationError(
            f"no standard pattern for rate {rate!r}; available: "
            f"{sorted(STANDARD_PATTERNS)}"
        ) from exc
