"""Tail-biting convolutional coding.

Frame termination (flush bits) costs ``K-1`` extra bits per frame;
*tail-biting* avoids that overhead by initializing the encoder with the
message's own last ``K-1`` bits, so the trellis path starts and ends in
the same (unknown) state.  Decoding uses the wrap-around method: the
received frame is tiled, decoded with uniform initial metrics, and the
central copy is kept — by then the survivor paths have converged to the
circular solution.

This is the natural short-frame extension of the Viterbi MetaCore
(tail-biting codes are standard in cellular control channels) and
exercises the decoder's batch machinery in a new configuration.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.viterbi.decoder import ViterbiDecoder
from repro.viterbi.encoder import ConvolutionalEncoder

#: How many copies of the frame the wrap-around decoder processes; the
#: middle copy is decoded.  Three copies give the survivors a full
#: frame of context on both sides.
_DEFAULT_WRAPS = 3


def encode_tailbiting(
    encoder: ConvolutionalEncoder, bits: np.ndarray
) -> np.ndarray:
    """Tail-biting encoding: initial state = the message's last bits.

    The frame must be at least ``K-1`` bits long.  The returned symbols
    correspond one-to-one to the data bits (no flush overhead), and the
    encoder's start and end states coincide.
    """
    bits = np.asarray(bits)
    memory = encoder.constraint_length - 1
    if bits.shape[-1] < memory:
        raise ConfigurationError(
            f"tail-biting needs at least K-1 = {memory} bits per frame"
        )
    squeeze = bits.ndim == 1
    frames = bits.reshape(1, -1) if squeeze else bits
    out = np.empty(
        frames.shape + (encoder.n_outputs,), dtype=np.int8
    )
    for i, frame in enumerate(frames):
        # Initial state holds the last K-1 bits, most recent in the MSB:
        # the state reached after shifting in frame[-(K-1):] in order.
        state = 0
        for bit in frame[-memory:] if memory else []:
            state = encoder.next_state(state, int(bit))
        out[i] = encoder.encode(frame, initial_state=state)
    return out[0] if squeeze else out


def decode_tailbiting(
    decoder: ViterbiDecoder,
    received: np.ndarray,
    sigma: float = None,
    wraps: int = _DEFAULT_WRAPS,
) -> np.ndarray:
    """Wrap-around decoding of tail-biting frames.

    ``received`` has shape ``(steps, n)`` or ``(frames, steps, n)``.
    The frame is tiled ``wraps`` times, decoded with uniform initial
    metrics (any start state is possible), and the middle copy's bits
    are returned.
    """
    if wraps < 2:
        raise ConfigurationError("wrap-around decoding needs >= 2 copies")
    received = np.asarray(received, dtype=float)
    squeeze = received.ndim == 2
    if squeeze:
        received = received[np.newaxis]
    steps = received.shape[1]
    tiled = np.tile(received, (1, wraps, 1))
    # Uniform initial metrics: decode with the standard decoder but
    # neutralize its known-start assumption by prepending one wrap, so
    # by the middle copy the bias has washed out.
    decoded = decoder.decode(tiled, sigma=sigma)
    middle = wraps // 2
    bits = decoded[:, middle * steps : (middle + 1) * steps]
    return bits[0] if squeeze else bits
