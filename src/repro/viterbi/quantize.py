"""Channel-symbol quantizers (paper Sec. 3.2 and Fig. 4).

Received analog symbols must be quantized before branch-metric
computation.  The paper's design space exposes three methods through
its ``Q`` parameter:

``hard``
    1-bit sign decisions.  Fast, small, worst BER.
``fixed``
    Uniform soft quantization with a decision level ``D`` fixed at
    design time, independent of channel conditions.
``adaptive``
    Uniform soft quantization whose decision level is derived from the
    channel's Es/N0 (the AHA application-note scheme of Fig. 4): the
    level spacing tracks the noise standard deviation.

All quantizers output integer levels in ``[0, 2**bits - 1]``, with the
top level meaning "confidently bit 0" (transmitted +1) and level 0
meaning "confidently bit 1" (transmitted -1).  One-bit quantization of
any method degenerates to a hard sign decision, which is how the
decoder treats ``R1 = 1`` low-resolution updates.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Default ratio between the quantizer decision level and the noise
#: standard deviation for adaptive quantization.  Half a sigma per step
#: is the classic choice from the AHA soft-decision application note.
ADAPTIVE_SPACING_FACTOR = 0.5

#: Decision level used by fixed quantizers when none is specified.  With
#: unit-amplitude BPSK this spreads the levels across [-1, +1].
DEFAULT_FIXED_DECISION_LEVEL = 0.35

#: Sentinel level marking an erased (depunctured) channel symbol.
ERASURE_LEVEL = -1


class Quantizer(ABC):
    """Base class: maps analog samples to integer levels."""

    def __init__(self, bits: int) -> None:
        if bits < 1:
            raise ConfigurationError("quantizer needs at least 1 bit")
        if bits > 8:
            raise ConfigurationError("more than 8 quantization bits is unsupported")
        self.bits = int(bits)
        self.n_levels = 1 << self.bits
        self.max_level = self.n_levels - 1

    @abstractmethod
    def decision_level(self, sigma: Optional[float]) -> float:
        """The level spacing ``D`` used for the given channel noise."""

    @property
    def lut_base(self) -> int:
        """Radix of the per-symbol index used by the fused decode kernels.

        One slot per quantized level plus one for the erasure sentinel
        (:data:`ERASURE_LEVEL`), so a received symbol tuple maps to a
        unique integer in ``[0, lut_base**n_symbols)`` — the row index
        of the precomputed branch-metric lookup table (see
        :meth:`repro.viterbi.metrics.BranchMetricTable.combo_lut`).
        """
        return self.n_levels + 1

    def cache_key(self) -> Optional[Tuple]:
        """A hashable spec identifying this quantizer's exact behavior.

        Used to memoize derived tables (branch metrics) across design
        points that share a quantizer configuration.  Subclasses whose
        behavior is fully captured by their constructor arguments return
        those; unknown subclasses return ``None``, which disables
        sharing rather than risking a false match.
        """
        return None

    def quantize(self, samples: np.ndarray, sigma: Optional[float] = None) -> np.ndarray:
        """Quantize analog samples to integer levels.

        ``sigma`` is the channel noise standard deviation; adaptive
        quantizers require it, others ignore it.  NaN samples denote
        *erasures* (depunctured positions) and map to the sentinel
        level :data:`ERASURE_LEVEL`, which branch metrics ignore.
        """
        samples = np.asarray(samples, dtype=float)
        erased = np.isnan(samples)
        if self.bits == 1:
            levels = (samples >= 0.0).astype(np.int64)
        else:
            step = self.decision_level(sigma)
            # Uniform mid-rise quantizer centred on zero: thresholds at
            # multiples of D, 2**(bits-1) levels per polarity.
            with np.errstate(invalid="ignore"):
                shifted = np.floor(samples / step) + (self.n_levels // 2)
                shifted = np.nan_to_num(shifted, nan=0.0)
            levels = np.clip(shifted, 0, self.max_level).astype(np.int64)
        if erased.any():
            levels = levels.copy()
            levels[erased] = ERASURE_LEVEL
        return levels

    def thresholds(self, sigma: Optional[float] = None) -> np.ndarray:
        """The decision thresholds separating adjacent levels.

        This is the data behind the paper's Fig. 4 — ``n_levels - 1``
        thresholds at integer multiples of ``D`` centred on zero.
        """
        if self.bits == 1:
            return np.array([0.0])
        step = self.decision_level(sigma)
        half = self.n_levels // 2
        return step * np.arange(-(half - 1), half)

    def ideal_level(self, bit: int) -> int:
        """The level a noiseless transmission of ``bit`` maps to."""
        return self.max_level if bit == 0 else 0


class HardQuantizer(Quantizer):
    """1-bit sign quantization (hard decision decoding)."""

    def __init__(self) -> None:
        super().__init__(bits=1)

    def decision_level(self, sigma: Optional[float]) -> float:
        return 0.0

    def cache_key(self) -> Tuple:
        return ("hard", 1)


class FixedQuantizer(Quantizer):
    """Uniform quantizer with a channel-independent decision level."""

    def __init__(
        self, bits: int, decision_level: float = DEFAULT_FIXED_DECISION_LEVEL
    ) -> None:
        super().__init__(bits)
        if decision_level <= 0:
            raise ConfigurationError("decision level must be positive")
        self._decision_level = float(decision_level)

    def decision_level(self, sigma: Optional[float]) -> float:
        return self._decision_level

    def cache_key(self) -> Tuple:
        return ("fixed", self.bits, self._decision_level)


class AdaptiveQuantizer(Quantizer):
    """Uniform quantizer whose decision level tracks the channel noise.

    ``D = spacing_factor * sigma`` where ``sigma`` comes from the
    channel's Es/N0 — this is the adaptive scheme of the paper's Fig. 4.
    """

    def __init__(
        self, bits: int, spacing_factor: float = ADAPTIVE_SPACING_FACTOR
    ) -> None:
        super().__init__(bits)
        if spacing_factor <= 0:
            raise ConfigurationError("spacing factor must be positive")
        self.spacing_factor = float(spacing_factor)

    def cache_key(self) -> Tuple:
        return ("adaptive", self.bits, self.spacing_factor)

    def decision_level(self, sigma: Optional[float]) -> float:
        if sigma is None:
            raise ConfigurationError(
                "adaptive quantization needs the channel noise sigma"
            )
        return self.spacing_factor * float(sigma)


def make_quantizer(
    method: str,
    bits: int,
    decision_level: Optional[float] = None,
    spacing_factor: Optional[float] = None,
) -> Quantizer:
    """Factory keyed by the paper's ``Q`` parameter values.

    ``method`` is one of ``"hard"``, ``"fixed"``, ``"adaptive"`` (the
    single-letter forms ``"H"/"F"/"A"`` used in Table 3 also work).
    """
    key = method.strip().lower()
    aliases = {"h": "hard", "f": "fixed", "a": "adaptive"}
    key = aliases.get(key, key)
    if key == "hard":
        if bits != 1:
            raise ConfigurationError("hard quantization is 1-bit by definition")
        return HardQuantizer()
    if bits == 1:
        # A 1-bit "soft" quantizer is a hard decision regardless of method.
        return HardQuantizer()
    if key == "fixed":
        level = DEFAULT_FIXED_DECISION_LEVEL if decision_level is None else decision_level
        return FixedQuantizer(bits, level)
    if key == "adaptive":
        factor = ADAPTIVE_SPACING_FACTOR if spacing_factor is None else spacing_factor
        return AdaptiveQuantizer(bits, factor)
    raise ConfigurationError(f"unknown quantization method: {method!r}")
