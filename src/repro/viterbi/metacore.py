"""The Viterbi MetaCore (paper Sec. 4.1/4.2 and 5.2).

Bundles the four MetaCore components for the Viterbi driver:

- the 8-dimensional design space of Table 2 (K, L, G, R1, R2, Q, N, M);
- objectives/constraints: minimize area at a fixed throughput subject
  to a BER threshold curve;
- the cost-evaluation engine: union-bound BER estimation at the lowest
  fidelity, Monte-Carlo simulation with growing bit budgets above it,
  and the Trimaran-stand-in machine model for area/throughput;
- glue to run the multiresolution search and to build the concrete
  decoder for any design point.
"""

from __future__ import annotations

import math
import dataclasses
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence, Tuple

from repro.core.evalcache import PersistentEvalCache
from repro.core.objectives import (
    BERThresholdCurve,
    Constraint,
    DesignGoal,
    Objective,
)
from repro.core.parallel import ParallelEvaluator
from repro.core.parameters import (
    Correlation,
    DesignSpace,
    DiscreteParameter,
    Point,
)
from repro.core.search import MetacoreSearch, SearchConfig, SearchResult
from repro.errors import ConfigurationError, SynthesisError
from repro.hardware.trace import ViterbiInstanceParams, viterbi_program
from repro.hardware.vliw import ImplementationEstimate, optimize_machine
from repro.observability.metrics import get_registry
from repro.power import PowerConfig, PowerModel
from repro.viterbi.ber import BERSimulator, DEFAULT_SEED
from repro.viterbi.bounds import estimate_ber
from repro.viterbi.decoder import ViterbiDecoder
from repro.viterbi.kernels import DECODE_KERNELS
from repro.viterbi.encoder import ConvolutionalEncoder
from repro.viterbi.multires import MultiresolutionViterbiDecoder
from repro.viterbi.polynomials import default_polynomials
from repro.viterbi.quantize import HardQuantizer, make_quantizer
from repro.viterbi.trellis import trellis_for

#: Es/N0 penalty (dB) of fixed relative to adaptive quantization in the
#: analytic estimate (the fixed decision level is mistuned off its
#: design SNR; calibrated against Monte-Carlo runs).
FIXED_QUANTIZATION_PENALTY_DB = 0.3

#: Monte-Carlo budgets per fidelity level: (max bits, target errors).
#: Level 0 is analytic (no simulation).
FIDELITY_BUDGETS: Tuple[Tuple[int, int], ...] = (
    (0, 0),
    (24_000, 60),
    (80_000, 120),
    (240_000, 250),
)

#: At the top fidelity the bit budget also adapts to the BER threshold
#: under test: enough bits for ~TOP_FIDELITY_ERRORS_AT_THRESHOLD errors
#: at threshold-level BER, capped to keep a single confirmation bounded.
TOP_FIDELITY_ERRORS_AT_THRESHOLD = 25
TOP_FIDELITY_MAX_BITS = 2_500_000


def viterbi_design_space(
    fixed: Optional[Dict[str, object]] = None,
) -> DesignSpace:
    """The Table-2 design space.

    ``fixed`` pins parameters to single values (the paper fixes G and N
    "to speedup the search process"); pass e.g. ``{"Q": "adaptive"}``.
    ``M = 0`` encodes pure (non-multiresolution) decoding; positive M
    is the number of recomputed high-resolution paths.
    """
    fixed = dict(fixed or {})
    definitions = [
        DiscreteParameter(
            "K", (3, 4, 5, 6, 7), Correlation.MONOTONIC, "constraint length"
        ),
        DiscreteParameter(
            "L_mult",
            (1, 2, 3, 4, 5, 6, 7),
            Correlation.MONOTONIC,
            "trace-back depth in multiples of K",
        ),
        DiscreteParameter(
            "G",
            ("standard",),
            Correlation.NONE,
            "encoder polynomials (standard = best-known for K)",
        ),
        DiscreteParameter(
            "R1", (1, 2, 3), Correlation.MONOTONIC, "low-resolution bits"
        ),
        DiscreteParameter(
            "R2", (2, 3, 4, 5), Correlation.MONOTONIC, "high-resolution bits"
        ),
        DiscreteParameter(
            "Q",
            ("hard", "fixed", "adaptive"),
            Correlation.NONE,
            "quantization method",
        ),
        DiscreteParameter(
            "N", (1, 2, 3, 4), Correlation.MONOTONIC, "normalization branches"
        ),
        DiscreteParameter(
            "M",
            (0, 1, 2, 4, 8, 16, 32, 64),
            Correlation.MONOTONIC,
            "multiresolution paths (0 = pure decoding)",
        ),
    ]
    parameters = []
    for definition in definitions:
        if definition.name in fixed:
            value = fixed.pop(definition.name)
            definition.index_of(value)  # validate
            definition = DiscreteParameter(
                definition.name,
                (value,),
                definition.correlation,
                definition.description,
            )
        parameters.append(definition)
    if fixed:
        raise ConfigurationError(f"unknown fixed parameters: {sorted(fixed)}")
    return DesignSpace(parameters)


def normalize_viterbi_point(point: Point) -> Point:
    """Canonicalize the dependent Table-2 parameters.

    The axes are not independent (M <= 2**(K-1), R2 > R1, N <= M, hard
    decoding implies 1-bit R1 and no recomputation); grid points are
    repaired to the nearest valid configuration so that every point the
    search generates is evaluable, and equivalent configurations
    collapse to one canonical form (deduplicated by the search cache).
    """
    repaired = dict(point)
    k = int(repaired["K"])
    max_paths = 1 << (k - 1)
    if repaired["Q"] == "hard":
        repaired["R1"] = 1
        repaired["M"] = 0
    # Clamp the path count to the trellis size (M = 2**(K-1) recomputes
    # every state, i.e. behaves like full soft decoding at R2).
    m = min(int(repaired["M"]), max_paths)
    repaired["M"] = m
    if m == 0:
        # Pure decoding: R2 and N are inert; pin them to canonical values.
        repaired["R2"] = 2
        repaired["N"] = 1
        if int(repaired["R1"]) == 1:
            repaired["Q"] = "hard"
    else:
        if int(repaired["R2"]) <= int(repaired["R1"]):
            repaired["R2"] = int(repaired["R1"]) + 1
        repaired["N"] = min(int(repaired["N"]), m)
        if repaired["Q"] == "hard":
            repaired["Q"] = "adaptive"
    return repaired


def traceback_depth(point: Point) -> int:
    """L = L_mult * K (the paper searches L in multiples of K)."""
    return int(point["L_mult"]) * int(point["K"])


def polynomials_for_point(point: Point) -> Tuple[int, ...]:
    """Generator polynomials a point decodes with."""
    if point["G"] != "standard":
        raise ConfigurationError(f"unknown polynomial choice {point['G']!r}")
    return default_polynomials(int(point["K"]))


def instance_params(point: Point) -> ViterbiInstanceParams:
    """Hardware-model parameters of a (normalized) design point."""
    point = normalize_viterbi_point(point)
    n_symbols = len(polynomials_for_point(point))
    multires = int(point["M"]) > 0
    return ViterbiInstanceParams(
        constraint_length=int(point["K"]),
        traceback_depth=traceback_depth(point),
        low_resolution_bits=int(point["R1"]),
        n_symbols=n_symbols,
        high_resolution_bits=int(point["R2"]) if multires else None,
        multires_paths=int(point["M"]) if multires else None,
        normalization_count=int(point["N"]) if multires else 0,
    )


def build_decoder(point: Point, kernel: str = "fused") -> ViterbiDecoder:
    """Construct the concrete decoder a design point describes.

    ``kernel`` selects the forward-pass implementation (``"fused"`` or
    ``"reference"``); the two are bit-identical, so the choice never
    changes results, only wall-clock.
    """
    point = normalize_viterbi_point(point)
    k = int(point["K"])
    trellis = trellis_for(k, polynomials_for_point(point))
    depth = traceback_depth(point)
    r1 = int(point["R1"])
    method = str(point["Q"])
    if int(point["M"]) > 0:
        low = HardQuantizer() if r1 == 1 else make_quantizer(method, r1)
        high = make_quantizer(method, int(point["R2"]))
        return MultiresolutionViterbiDecoder(
            trellis,
            low,
            high,
            depth,
            multires_paths=int(point["M"]),
            normalization_count=int(point["N"]),
            kernel=kernel,
        )
    quantizer = HardQuantizer() if r1 == 1 else make_quantizer(method, r1)
    return ViterbiDecoder(trellis, quantizer, depth, kernel=kernel)


def describe_point(point: Point) -> str:
    """A Table-3 style row for a design point."""
    point = normalize_viterbi_point(point)
    polys = ",".join(format(p, "o") for p in polynomials_for_point(point))
    multires = int(point["M"]) > 0
    return (
        f"K={point['K']} L={point['L_mult']}*K G=({polys}) "
        f"R1={point['R1']} "
        f"R2={point['R2'] if multires else 'NA'} "
        f"Q={str(point['Q'])[0].upper()} "
        f"N={point['N'] if multires else 'NA'} "
        f"M={point['M'] if multires else 'NA'}"
    )


# ---------------------------------------------------------------------------
# Specification + evaluator
# ---------------------------------------------------------------------------


@dataclass
class ViterbiSpec:
    """A user specification: throughput plus a BER threshold curve."""

    throughput_bps: float
    ber_curve: BERThresholdCurve
    feature_um: float = 0.25
    seed: int = DEFAULT_SEED
    #: Opt-in power pricing (see :mod:`repro.power`); None keeps the
    #: classic 2-metric cost engine and its fingerprints untouched.
    power: Optional[PowerConfig] = None

    def __post_init__(self) -> None:
        if self.throughput_bps <= 0:
            raise ConfigurationError("throughput must be positive")

    def goal(self) -> DesignGoal:
        """Minimize area subject to the specification's BER curve.

        With power pricing enabled, energy per decoded bit joins the
        objectives (unless configured constraint-only) and the
        configured energy/power caps become constraints — the goal is
        then genuinely 3-objective: area, energy, BER feasibility.
        """
        objectives = [Objective("area_mm2")]
        constraints = []
        if self.power is not None:
            if self.power.objective:
                objectives.append(Objective("energy_nj_per_bit"))
            if self.power.max_energy_nj is not None:
                constraints.append(
                    Constraint(
                        "energy_nj_per_bit", upper=self.power.max_energy_nj
                    )
                )
            if self.power.max_power_mw is not None:
                constraints.append(
                    Constraint("power_mw", upper=self.power.max_power_mw)
                )
        return DesignGoal(
            objectives=objectives,
            constraints=constraints,
            ber_curve=self.ber_curve,
        )


class ViterbiMetacoreEvaluator:
    """Cost-evaluation engine for the Viterbi MetaCore.

    Fidelity 0 prices BER with the union-bound estimator; fidelities
    1..3 run Monte-Carlo simulation with growing bit budgets (the
    paper's "more accurate simulation results (longer run times)" on
    finer grids).  Area/throughput always go through the machine model,
    which is cheap and deterministic.

    ``kernel`` selects the decode implementation: ``"fused"`` (default)
    builds fused-kernel decoders and lets the simulators group frame
    batches adaptively; ``"reference"`` reproduces the pre-kernel
    behavior exactly (step-by-step loop, batch-at-a-time simulation).
    Metrics are bit-identical either way, which is why the kernel does
    **not** appear in :meth:`fingerprint` — cached evaluations remain
    valid across the switch.
    """

    def __init__(self, spec: ViterbiSpec, kernel: str = "fused") -> None:
        if kernel not in DECODE_KERNELS:
            raise ConfigurationError(
                f"kernel must be one of {DECODE_KERNELS}"
            )
        self.spec = spec
        self.kernel = kernel
        self.max_fidelity = len(FIDELITY_BUDGETS) - 1
        self._simulators: Dict[Tuple[int, Tuple[int, ...]], BERSimulator] = {}
        self._power_model: Optional[PowerModel] = (
            PowerModel.for_spec(spec.feature_um, spec.power)
            if spec.power is not None
            else None
        )
        #: DVFS clock ratio; exactly 1.0 with power off or nominal Vdd,
        #: keeping non-energy metrics bit-identical in both cases.
        self._freq_scale: float = (
            self._power_model.frequency_scale
            if self._power_model is not None
            else 1.0
        )

    def fingerprint(self) -> str:
        """Cross-run cache key: everything that can change a metric.

        Covers the code version, the Monte-Carlo seed, the fidelity
        budgets, and the full specification (throughput, feature size,
        BER curve) — a change to any of these must orphan cached
        evaluations.
        """
        import repro

        curve = ";".join(
            f"{es:.6g}:{thr:.6g}" for es, thr in self.spec.ber_curve.points
        )
        # Power pricing adds energy metrics (and can rescale the clock),
        # so enabled configs get their own cache namespace; the default
        # power-off fingerprint is byte-identical to the pre-power one.
        power = (
            self.spec.power.fingerprint_fragment()
            if self.spec.power is not None
            else ""
        )
        return (
            f"viterbi:v{repro.__version__}"
            f":seed={self.spec.seed}"
            f":budgets={FIDELITY_BUDGETS}"
            f":top=({TOP_FIDELITY_ERRORS_AT_THRESHOLD},{TOP_FIDELITY_MAX_BITS})"
            f":fixed_penalty={FIXED_QUANTIZATION_PENALTY_DB}"
            f":throughput={self.spec.throughput_bps:.6g}"
            f":feature={self.spec.feature_um:.6g}"
            f":curve={curve}"
            f"{power}"
        )

    # -- BER ------------------------------------------------------------

    def _simulator(self, point: Point) -> BERSimulator:
        k = int(point["K"])
        polys = polynomials_for_point(point)
        key = (k, polys)
        if key not in self._simulators:
            self._simulators[key] = BERSimulator(
                ConvolutionalEncoder(k, polys),
                seed=self.spec.seed,
                adaptive_batching=self.kernel == "fused",
            )
        return self._simulators[key]

    def _analytic_ber(self, point: Point, es_n0_db: float) -> float:
        multires = int(point["M"]) > 0
        effective = es_n0_db
        if point["Q"] == "fixed":
            effective -= FIXED_QUANTIZATION_PENALTY_DB
        return estimate_ber(
            int(point["K"]),
            polynomials_for_point(point),
            effective,
            quantizer_bits=int(point["R1"]),
            traceback_depth=traceback_depth(point),
            high_bits=int(point["R2"]) if multires else None,
            multires_paths=int(point["M"]) if multires else None,
        )

    def _ber_metrics(self, point: Point, fidelity: int) -> Dict[str, float]:
        """Worst-margin BER metrics over the specified threshold curve."""
        curve = self.spec.ber_curve
        metrics: Dict[str, float] = {}
        worst_violation = -math.inf
        binding: Optional[Dict[str, float]] = None
        decoder = None
        for es_n0_db, threshold in curve.points:
            if fidelity == 0:
                ber = self._analytic_ber(point, es_n0_db)
                errors = bits = None
            else:
                if decoder is None:
                    decoder = build_decoder(point, kernel=self.kernel)
                max_bits, target_errors = FIDELITY_BUDGETS[fidelity]
                if fidelity == self.max_fidelity:
                    # Resolve the threshold: enough bits to expect a
                    # meaningful error count at threshold-level BER.
                    needed = int(
                        TOP_FIDELITY_ERRORS_AT_THRESHOLD / threshold
                    )
                    max_bits = min(
                        max(max_bits, needed), TOP_FIDELITY_MAX_BITS
                    )
                measured = self._simulator(point).measure(
                    decoder, es_n0_db, max_bits=max_bits, target_errors=target_errors
                )
                ber = max(measured.errors, 0.5) / measured.bits
                errors, bits = measured.errors, measured.bits
            violation = math.log10(max(ber, 1e-300) / threshold)
            if violation > worst_violation:
                worst_violation = violation
                binding = {
                    "ber": ber,
                    "ber_threshold": threshold,
                    "ber_es_n0_db": es_n0_db,
                }
                if errors is not None:
                    binding["ber_errors"] = float(errors)
                    binding["ber_bits"] = float(bits)
        assert binding is not None
        metrics.update(binding)
        metrics["ber_violation"] = max(0.0, worst_violation)
        return metrics

    # -- area / throughput ----------------------------------------------

    def _hardware_metrics(self, point: Point) -> Dict[str, float]:
        program = viterbi_program(instance_params(point))
        # At a non-nominal supply every machine clocks freq_scale times
        # its nominal rate, so the nominal-clock optimizer must hit the
        # correspondingly rescaled throughput target (exact no-op at
        # freq_scale == 1.0, i.e. power off or nominal Vdd).
        freq_scale = self._freq_scale
        try:
            estimate: ImplementationEstimate = optimize_machine(
                program,
                self.spec.throughput_bps / freq_scale,
                feature_um=self.spec.feature_um,
            )
        except SynthesisError:
            dead = {
                "area_mm2": math.inf,
                "throughput_bps": 0.0,
                "hw_feasible": 0.0,
            }
            if self._power_model is not None:
                dead["energy_nj_per_bit"] = math.inf
                dead["power_mw"] = math.inf
            return dead
        throughput = estimate.throughput_bps * freq_scale
        metrics = {
            "area_mm2": estimate.area_mm2,
            "throughput_bps": throughput,
            "cycles_per_bit": estimate.schedule.cycles,
            "n_alus": float(estimate.machine.n_alus),
            "hw_feasible": 1.0,
        }
        if self._power_model is not None:
            report = self._power_model.viterbi_report(
                program, estimate.machine, bits_per_s=throughput
            )
            metrics["energy_nj_per_bit"] = report.energy_nj
            metrics["power_mw"] = report.power_mw
        return metrics

    # -- evaluator protocol ----------------------------------------------

    def evaluate(self, point: Point, fidelity: int) -> Dict[str, float]:
        """Price one design point: hardware first, then BER metrics."""
        if not 0 <= fidelity <= self.max_fidelity:
            raise ConfigurationError(f"fidelity {fidelity} out of range")
        point = normalize_viterbi_point(point)
        if self._power_model is not None:
            registry = get_registry()
            registry.counter("power.priced").inc()
            registry.counter(f"power.priced.f{fidelity}").inc()
        metrics = self._hardware_metrics(point)
        if math.isinf(metrics["area_mm2"]):
            # No machine reaches the throughput: skip the (expensive)
            # BER work, the point is dead either way.
            metrics["ber_violation"] = math.inf
            return metrics
        metrics.update(self._ber_metrics(point, fidelity))
        return metrics


@dataclass
class ViterbiMetaCore:
    """Facade: specification in, optimized decoder instance out."""

    spec: ViterbiSpec
    fixed: Dict[str, object] = field(default_factory=dict)
    config: Optional[SearchConfig] = None
    #: Worker processes for grid evaluation (1 = serial in-process).
    workers: int = 1
    #: Path of the persistent cross-run evaluation cache (None = cold).
    cache_path: Optional[str] = None
    #: Crash-tolerant session checkpoint (see :mod:`repro.resilience`).
    checkpoint_path: Optional[str] = None
    #: Resume from an existing checkpoint instead of starting cold.
    resume: bool = False
    #: Abort (checkpoint intact) after this many computed rounds.
    max_rounds: Optional[int] = None
    #: Wrap the evaluator in the retry/quarantine shim.
    resilient: bool = False
    #: Path of the persistent design atlas (None = no library): searches
    #: warm-start from it and ingest their logs back into it.
    atlas_path: Optional[str] = None
    #: Decode kernel for cost evaluation ("fused" or "reference");
    #: results are bit-identical, only wall-clock differs.
    kernel: str = "fused"
    #: Search strategy override ("grid", "evolve" or "surrogate");
    #: None defers to :attr:`config` (whose own default is "grid").
    strategy: Optional[str] = None

    def design_space(self) -> DesignSpace:
        """The Table-2 space with this MetaCore's fixed parameters."""
        return viterbi_design_space(self.fixed)

    def _effective_config(self) -> Optional[SearchConfig]:
        """:attr:`config` with the :attr:`strategy` override applied."""
        if self.strategy is None:
            return self.config
        return replace(self.config or SearchConfig(), strategy=self.strategy)

    def _open_atlas(self, engine: ViterbiMetacoreEvaluator):
        """(atlas, seeder) for this scenario, or (None, None)."""
        if not self.atlas_path:
            return None, None
        # Imported lazily: repro.atlas dispatches on the spec types.
        from repro.atlas import DesignAtlas, seeder_for

        atlas = DesignAtlas(self.atlas_path)
        seeder = seeder_for(atlas, engine, "viterbi", self.spec, self.spec.goal())
        return atlas, seeder

    def search(self) -> SearchResult:
        """Run the multiresolution search for this specification."""
        if self.checkpoint_path:
            return self.search_session().result
        engine = ViterbiMetacoreEvaluator(self.spec, kernel=self.kernel)
        atlas, seeder = self._open_atlas(engine)
        try:
            return self._run_search(engine, atlas, seeder)
        finally:
            if atlas is not None:
                atlas.close()

    def _run_search(self, engine, atlas, seeder) -> SearchResult:
        """One search against an already-open atlas handle (or None)."""
        evaluator: object = engine
        parallel: Optional[ParallelEvaluator] = None
        store: Optional[PersistentEvalCache] = None
        try:
            if self.workers and self.workers > 1:
                parallel = ParallelEvaluator(evaluator, workers=self.workers)
                evaluator = parallel
            if self.cache_path:
                store = PersistentEvalCache(self.cache_path)
            searcher = MetacoreSearch(
                self.design_space(),
                self.spec.goal(),
                evaluator,
                config=self._effective_config(),
                normalizer=normalize_viterbi_point,
                store=store,
                atlas=seeder,
            )
            result = searcher.run()
            if atlas is not None:
                from repro.atlas import ingest_result

                ingest_result(
                    atlas, seeder, result.log.records, engine.max_fidelity
                )
            return result
        finally:
            if parallel is not None:
                parallel.close()
            if store is not None:
                store.close()

    def search_session(self):
        """Run the search as a checkpointed, resumable session.

        Returns a :class:`~repro.resilience.session.SessionResult`;
        requires :attr:`checkpoint_path`.
        """
        # Imported lazily: repro.resilience depends on this module.
        from repro.resilience.session import SearchSession

        if not self.checkpoint_path:
            raise ConfigurationError("search_session requires checkpoint_path")
        engine = ViterbiMetacoreEvaluator(self.spec, kernel=self.kernel)
        evaluator: object = engine
        parallel: Optional[ParallelEvaluator] = None
        store: Optional[PersistentEvalCache] = None
        atlas, seeder = self._open_atlas(engine)
        try:
            if self.workers and self.workers > 1:
                parallel = ParallelEvaluator(evaluator, workers=self.workers)
                evaluator = parallel
            if self.cache_path:
                store = PersistentEvalCache(self.cache_path)
            session = SearchSession(
                self.design_space(),
                self.spec.goal(),
                evaluator,
                self.checkpoint_path,
                config=self._effective_config(),
                normalizer=normalize_viterbi_point,
                store=store,
                resume=self.resume,
                max_rounds=self.max_rounds,
                resilient=self.resilient,
                atlas=seeder,
            )
            session_result = session.run()
            if atlas is not None:
                from repro.atlas import ingest_result

                ingest_result(
                    atlas,
                    seeder,
                    session_result.result.log.records,
                    engine.max_fidelity,
                )
            return session_result
        finally:
            if parallel is not None:
                parallel.close()
            if store is not None:
                store.close()
            if atlas is not None:
                atlas.close()

    def serve(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_path: Optional[str] = None,
        config: Optional[object] = None,
        replicas: int = 1,
    ):
        """Serve this MetaCore's evaluation engine to concurrent clients.

        Starts the asyncio evaluation service (socket server on a
        background thread) with this facade's ``workers`` /
        ``cache_path`` / ``resilient`` settings and a pre-warmed
        session for this specification; returns a started
        :class:`~repro.serve.server.ServeHandle` (context manager).
        Results are bit-identical to one-shot evaluation — see
        ``docs/serving.md``.

        With ``replicas > 1`` this becomes cluster mode: N replica
        services plus a fingerprint-sharded router front door, returned
        as a started :class:`~repro.cluster.handle.ClusterHandle` with
        the same ``client()``/``stop()`` surface.  Replicas share the
        design atlas; results stay bit-identical — see
        ``docs/cluster.md``.
        """
        # Imported lazily: repro.serve depends on this module.
        from repro.serve import ServeHandle, ServiceConfig, spec_to_payload

        if config is None:
            config = ServiceConfig(
                workers=self.workers,
                cache_path=self.cache_path,
                resilient=self.resilient,
                atlas_path=self.atlas_path,
            )
        if replicas > 1:
            from repro.cluster import ClusterHandle

            cluster = ClusterHandle(
                config, replicas=replicas, host=host, port=port
            )
            cluster.start()
            cluster.register_spec(self.spec)
            return cluster
        handle = ServeHandle(
            config, host=host, port=port, unix_path=unix_path
        )
        handle.start()
        handle.service.session_for_spec(spec_to_payload(self.spec))
        return handle

    def recommend(self, constraints: Optional[Dict[str, float]] = None):
        """Answer a constraint query from the design atlas.

        ``constraints`` are extra per-query upper bounds on metrics
        (e.g. ``{"area_mm2": 40.0}``) tightening the specification's
        goal.  A stored frontier design covering the query is returned
        with **zero evaluations**; a library miss falls back to a
        (warm-started) :meth:`search`, whose log is ingested so the
        next nearby query hits.  Requires :attr:`atlas_path`; returns a
        :class:`~repro.atlas.recommend.Recommendation`.
        """
        if not self.atlas_path:
            raise ConfigurationError("recommend requires atlas_path")
        # Imported lazily: repro.atlas dispatches on the spec types.
        from repro.atlas import DesignAtlas, recommend, seeder_for

        engine = ViterbiMetacoreEvaluator(self.spec, kernel=self.kernel)
        with DesignAtlas(self.atlas_path) as atlas:
            seeder = seeder_for(
                atlas, engine, "viterbi", self.spec, self.spec.goal()
            )
            recommendation = recommend(
                atlas,
                seeder.fingerprint,
                self.spec.goal(),
                constraints=constraints,
                fallback=self._recommend_fallback(atlas, seeder),
            )
        return recommendation

    def _recommend_fallback(self, atlas, seeder):
        """A warm-started search over the already-open atlas handle."""

        def fallback() -> SearchResult:
            engine = ViterbiMetacoreEvaluator(self.spec, kernel=self.kernel)
            return self._run_search(engine, atlas, seeder)

        return fallback

    def sweep(
        self,
        specs: Sequence[ViterbiSpec],
        labels: Optional[Sequence[str]] = None,
    ):
        """Search a portfolio of specifications into one atlas.

        Each spec runs through a copy of this facade (same fixed
        parameters, config, workers, cache, atlas); returns a
        :class:`~repro.atlas.sweep.SweepOutcome`.
        """
        from repro.atlas import run_sweep

        metacores = [dataclasses.replace(self, spec=spec) for spec in specs]
        return run_sweep(metacores, labels=labels)

    def build(self, point: Point) -> ViterbiDecoder:
        """Construct the concrete decoder for a design point."""
        return build_decoder(point, kernel=self.kernel)
