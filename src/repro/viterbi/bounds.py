"""Analytic BER estimation via the union bound.

The multiresolution search evaluates coarse grids with "simulation
times kept short" (Sec. 4.4).  The cheapest evaluation of all is an
analytic one: the classic union bound over the code's distance
spectrum,

    BER  <=  sum_d  B_d * P2(d)

where ``B_d`` is the total input weight of error events at output
distance ``d`` (computed exactly from the trellis here) and ``P2(d)``
the pairwise error probability of an event at distance ``d`` under the
decoder's quantization.  The estimator is smooth in the design
parameters, instantaneous to evaluate, and accurate at moderate-to-high
SNR — exactly what the coarse search grid needs; Monte-Carlo simulation
(:mod:`repro.viterbi.ber`) remains the high-resolution evaluation.

Quantization enters through calibrated efficiency factors (hard
decisions use the exact binomial pairwise error probability), the
multiresolution decoder through a geometric interpolation between the
hard and soft pairwise probabilities weighted by the recomputed path
fraction, and finite trace-back depth through a calibrated truncation
penalty that vanishes beyond ``L = 7K`` (the paper's observation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.viterbi.channel import es_n0_db_to_linear
from repro.viterbi.encoder import ConvolutionalEncoder
from repro.viterbi.trellis import Trellis

#: Quantization efficiency (fraction of the soft-decision Es/N0
#: retained) per resolution; hard decisions are handled exactly.
QUANTIZATION_EFFICIENCY: Dict[int, float] = {
    2: 0.86,
    3: 0.96,
    4: 0.99,
}

#: Spectrum depth: distances dfree .. dfree + SPECTRUM_TERMS - 1.
SPECTRUM_TERMS = 6

#: Trace-back truncation penalty constants: a multiplicative BER factor
#: ``1 + TRUNC_SCALE * exp(-TRUNC_RATE * L / K)``, calibrated so the
#: penalty is ~3x at L = 2K and gone past L = 7K (Sec. 4.1).
TRUNC_SCALE = 12.0
TRUNC_RATE = 0.9


def _q_function(x: float) -> float:
    """Gaussian tail probability Q(x)."""
    return 0.5 * math.erfc(x / math.sqrt(2.0))


def quantization_efficiency(bits: int) -> float:
    """Soft-decision efficiency of a ``bits``-bit quantizer."""
    if bits < 2:
        raise ConfigurationError("use the binomial formula for hard decisions")
    return QUANTIZATION_EFFICIENCY.get(bits, 1.0)


@dataclass(frozen=True)
class DistanceSpectrum:
    """Free distance and input-weight spectrum of a convolutional code."""

    free_distance: int
    #: ``weights[d]`` = total input weight of error events at distance d.
    weights: Tuple[Tuple[int, float], ...]

    def as_dict(self) -> Dict[int, float]:
        return dict(self.weights)


def distance_spectrum(
    encoder: ConvolutionalEncoder, extra_terms: int = SPECTRUM_TERMS
) -> DistanceSpectrum:
    """Exact distance spectrum via dynamic programming on the trellis.

    Counts all paths that diverge from state 0 and remerge into it
    without touching it in between, accumulating the number of paths and
    their total input weight per output Hamming distance.
    """
    trellis = Trellis.from_encoder(encoder)
    n_states = encoder.n_states
    # First find the free distance with a Dijkstra-style search, so the
    # DP can bound its distance axis.
    dfree = _free_distance(encoder)
    dmax = dfree + extra_terms - 1
    # counts[s, d] / weight[s, d]: paths 0 -> s (s != 0) at distance d.
    counts = np.zeros((n_states, dmax + 1))
    weight = np.zeros((n_states, dmax + 1))
    merged_weight = np.zeros(dmax + 1)
    # Diverge: the input-1 branch out of state 0.
    start_state = trellis_next(encoder, 0, 1)
    start_dist = sum(encoder.output_symbols(0, 1))
    if start_dist <= dmax:
        counts[start_state, start_dist] = 1.0
        weight[start_state, start_dist] = 1.0
    max_steps = 64 * encoder.constraint_length + 256
    for _ in range(max_steps):
        if not counts.any():
            break
        new_counts = np.zeros_like(counts)
        new_weight = np.zeros_like(weight)
        for state in range(n_states):
            if not counts[state].any():
                continue
            for bit in (0, 1):
                nxt = trellis_next(encoder, state, bit)
                dist = sum(encoder.output_symbols(state, bit))
                shifted_counts = _shift(counts[state], dist, dmax)
                shifted_weight = _shift(weight[state], dist, dmax) + (
                    bit * shifted_counts
                )
                if nxt == 0:
                    merged_weight += shifted_weight
                else:
                    new_counts[nxt] += shifted_counts
                    new_weight[nxt] += shifted_weight
        counts, weight = new_counts, new_weight
    weights = tuple(
        (d, float(merged_weight[d]))
        for d in range(dfree, dmax + 1)
        if merged_weight[d] > 0 or d == dfree
    )
    return DistanceSpectrum(free_distance=dfree, weights=weights)


def _shift(row: np.ndarray, dist: int, dmax: int) -> np.ndarray:
    """Shift a distance-indexed row by ``dist``, dropping overflow."""
    out = np.zeros_like(row)
    if dist == 0:
        return row.copy()
    if dist <= dmax:
        out[dist:] = row[: dmax + 1 - dist]
    return out


def trellis_next(encoder: ConvolutionalEncoder, state: int, bit: int) -> int:
    """Forward transition (thin wrapper to keep the DP readable)."""
    return encoder.next_state(state, bit)


def _free_distance(encoder: ConvolutionalEncoder) -> int:
    """Minimum output distance of any error event (Dijkstra on states)."""
    import heapq

    n_states = encoder.n_states
    start = encoder.next_state(0, 1)
    start_dist = sum(encoder.output_symbols(0, 1))
    best = {start: start_dist}
    heap = [(start_dist, start)]
    dfree = math.inf
    while heap:
        dist, state = heapq.heappop(heap)
        if dist > best.get(state, math.inf) or dist >= dfree:
            continue
        for bit in (0, 1):
            nxt = encoder.next_state(state, bit)
            ndist = dist + sum(encoder.output_symbols(state, bit))
            if nxt == 0:
                dfree = min(dfree, ndist)
            elif ndist < best.get(nxt, math.inf):
                best[nxt] = ndist
                heapq.heappush(heap, (ndist, nxt))
    if not math.isfinite(dfree):
        raise ConfigurationError("code has no remerging path (degenerate)")
    return int(dfree)


# ---------------------------------------------------------------------------
# Pairwise error probabilities
# ---------------------------------------------------------------------------


def pairwise_error_soft(distance: int, es_n0_db: float, bits: int) -> float:
    """P2(d) for soft decoding with a ``bits``-bit quantizer."""
    ratio = es_n0_db_to_linear(es_n0_db) * quantization_efficiency(bits)
    return _q_function(math.sqrt(2.0 * distance * ratio))


def pairwise_error_hard(distance: int, es_n0_db: float) -> float:
    """Exact P2(d) for hard decisions (binomial over symbol errors)."""
    p = _q_function(math.sqrt(2.0 * es_n0_db_to_linear(es_n0_db)))
    total = 0.0
    if distance % 2 == 1:
        lo = (distance + 1) // 2
    else:
        half = distance // 2
        total += 0.5 * math.comb(distance, half) * p**half * (1 - p) ** half
        lo = half + 1
    for k in range(lo, distance + 1):
        total += math.comb(distance, k) * p**k * (1 - p) ** (distance - k)
    return total


def pairwise_error_multires(
    distance: int,
    es_n0_db: float,
    high_bits: int,
    multires_paths: int,
    n_states: int,
) -> float:
    """P2(d) for the multiresolution decoder.

    Geometric interpolation between the hard and high-resolution soft
    pairwise error probabilities, weighted by ``sqrt(M / 2**(K-1))`` —
    the calibrated fraction of the hard-to-soft gap the recomputation
    recovers.  Exact at both endpoints (M=0 hard, M=S full soft).
    """
    if not 1 <= multires_paths <= n_states:
        raise ConfigurationError("M out of range")
    hard = pairwise_error_hard(distance, es_n0_db)
    soft = pairwise_error_soft(distance, es_n0_db, high_bits)
    w = math.sqrt(multires_paths / n_states)
    if hard <= 0.0 or soft <= 0.0:
        return 0.0
    return math.exp((1.0 - w) * math.log(hard) + w * math.log(soft))


# ---------------------------------------------------------------------------
# The estimator
# ---------------------------------------------------------------------------


@lru_cache(maxsize=128)
def _cached_spectrum(constraint_length: int, polynomials: Tuple[int, ...]):
    encoder = ConvolutionalEncoder(constraint_length, polynomials)
    return distance_spectrum(encoder)


def truncation_penalty(traceback_depth: int, constraint_length: int) -> float:
    """Multiplicative BER penalty of a finite trace-back depth."""
    ratio = traceback_depth / float(constraint_length)
    return 1.0 + TRUNC_SCALE * math.exp(-TRUNC_RATE * ratio)


def estimate_ber(
    constraint_length: int,
    polynomials: Tuple[int, ...],
    es_n0_db: float,
    quantizer_bits: int,
    traceback_depth: int,
    high_bits: Optional[int] = None,
    multires_paths: Optional[int] = None,
) -> float:
    """Union-bound BER estimate for one decoder instance.

    ``quantizer_bits`` is R1; pass ``high_bits``/``multires_paths`` for
    the multiresolution decoder.  The result is clamped to [0, 0.5]
    (the bound diverges at very low SNR, where 0.5 is the honest
    answer anyway).
    """
    spectrum = _cached_spectrum(constraint_length, tuple(polynomials))
    n_states = 1 << (constraint_length - 1)
    total = 0.0
    for distance, b_d in spectrum.weights:
        if multires_paths is not None:
            if high_bits is None:
                raise ConfigurationError("multires estimate needs high_bits")
            p2 = pairwise_error_multires(
                distance, es_n0_db, high_bits, multires_paths, n_states
            )
        elif quantizer_bits == 1:
            p2 = pairwise_error_hard(distance, es_n0_db)
        else:
            p2 = pairwise_error_soft(distance, es_n0_db, quantizer_bits)
        total += b_d * p2
    total *= truncation_penalty(traceback_depth, constraint_length)
    return min(total, 0.5)
