"""Power-aware cost engine: technology scaling, DVFS, energy pricing.

The subsystem turns the cost engine 3-objective: technology-node
tables pin per-generation electrical conditions
(:mod:`repro.power.technology`), DVFS operating points trade supply
voltage against clock frequency (:mod:`repro.power.dvfs`), a storage
model charges standby leakage (:mod:`repro.power.storage`), and
:class:`PowerModel` prices whole implementations into
energy-per-item / average-power metrics the search layer can
optimize and constrain (:mod:`repro.power.model`).
"""

from repro.power.dvfs import (
    ALPHA,
    DVFS_UPPER_RATIO,
    NEAR_THRESHOLD_MARGIN_V,
    OperatingPoint,
    dvfs_bounds,
    frequency_scale,
    max_frequency_mhz,
)
from repro.power.model import PowerConfig, PowerModel, PowerReport
from repro.power.storage import LEAKAGE_NW_PER_BIT, leakage_power_mw
from repro.power.technology import (
    TECHNOLOGY_NODES,
    VDD_REFERENCE_V,
    TechnologyNode,
    technology_node,
)

__all__ = [
    "ALPHA",
    "DVFS_UPPER_RATIO",
    "LEAKAGE_NW_PER_BIT",
    "NEAR_THRESHOLD_MARGIN_V",
    "OperatingPoint",
    "PowerConfig",
    "PowerModel",
    "PowerReport",
    "TECHNOLOGY_NODES",
    "TechnologyNode",
    "VDD_REFERENCE_V",
    "dvfs_bounds",
    "frequency_scale",
    "leakage_power_mw",
    "max_frequency_mhz",
    "technology_node",
]
