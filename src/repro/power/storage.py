"""Storage/leakage power for survivor memory and register files.

Dynamic energy is priced per executed operation by
:mod:`repro.hardware.power`; what that misses is the standby power of
the bits a design keeps alive whether or not it is switching — the
Viterbi survivor memory and register file, the IIR state registers.
In the style of cacti-p's per-cell leakage model, we charge a constant
per-bit leakage at the 0.35 um anchor and scale it by the technology
node's leakage factor (subthreshold current grows steeply as
thresholds drop) and linearly by the supply voltage.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.power.technology import TechnologyNode

#: Standby leakage per stored bit at the 0.35 um anchor node's nominal
#: supply, in nanowatts.  Deep-submicron nodes multiply this by their
#: ``leakage_factor``.
LEAKAGE_NW_PER_BIT = 0.02


def leakage_power_mw(
    bits: float, node: TechnologyNode, vdd_v: float
) -> float:
    """Standby power (mW) of ``bits`` stored bits at an operating point.

    Linear in the bit count and the supply; the node's leakage factor
    carries the exponential threshold-voltage dependence.
    """
    if bits < 0:
        raise ConfigurationError("stored bit count must be non-negative")
    per_bit_nw = (
        LEAKAGE_NW_PER_BIT
        * node.leakage_factor
        * (vdd_v / node.vdd_nominal_v)
    )
    return bits * per_bit_nw * 1e-6
