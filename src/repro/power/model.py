"""Power configuration and the implementation-to-energy model.

``PowerConfig`` is the opt-in knob a spec carries: *which* technology
node and supply to price at, and *what* energy/power budget the search
must respect.  ``PowerModel`` does the pricing — it combines the
per-operation dynamic energies of :mod:`repro.hardware.power`
(re-quoted at the 0.35 um / 3.3 V anchor, then scaled by the node's
capacitance factor and the classic V^2 supply dependence) with the
storage leakage of :mod:`repro.power.storage`, and reports
energy-per-item and average-power metrics for both kernel families.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Optional

from repro.errors import ConfigurationError
from repro.hardware.clock import TR4101_FEATURE_UM, TR4101_WIDTH_BITS
from repro.hardware.power import (
    ALU_ENERGY_PJ,
    CYCLE_OVERHEAD_PJ_PER_SLOT,
    MULT_ENERGY_PJ,
    estimate_energy,
)
from repro.hardware.synthesis import DataflowStats, SynthesisEstimate
from repro.hardware.vliw import LeveledProgram, MachineConfig
from repro.power.dvfs import OperatingPoint
from repro.power.storage import leakage_power_mw
from repro.power.technology import (
    VDD_REFERENCE_V,
    technology_node,
)


@dataclass(frozen=True)
class PowerConfig:
    """Opt-in power pricing for a spec.

    ``tech_node_um`` / ``vdd_v`` default to the spec's own feature size
    and that node's nominal supply; caps are optional constraints and
    ``objective`` controls whether energy also becomes a search
    objective (it always becomes a reported metric).
    """

    tech_node_um: Optional[float] = None
    vdd_v: Optional[float] = None
    max_power_mw: Optional[float] = None
    max_energy_nj: Optional[float] = None
    objective: bool = True

    def __post_init__(self) -> None:
        if self.tech_node_um is not None and self.tech_node_um <= 0:
            raise ConfigurationError("technology node must be positive")
        if self.vdd_v is not None and self.vdd_v <= 0:
            raise ConfigurationError("supply voltage must be positive")
        if self.max_power_mw is not None and self.max_power_mw <= 0:
            raise ConfigurationError("power cap must be positive")
        if self.max_energy_nj is not None and self.max_energy_nj <= 0:
            raise ConfigurationError("energy cap must be positive")

    def operating_point(self, feature_um: float) -> OperatingPoint:
        """Resolve the configured (node, supply) for a spec feature."""
        node = technology_node(
            self.tech_node_um if self.tech_node_um is not None else feature_um
        )
        vdd = self.vdd_v if self.vdd_v is not None else node.vdd_nominal_v
        return OperatingPoint(node=node, vdd_v=vdd)

    def fingerprint_fragment(self) -> str:
        """Cache-key fragment — only the knobs that change metric values.

        Caps and the objective flag shape the *goal*, not the metrics,
        so they are deliberately excluded to avoid splitting caches.
        """
        return f":power=node:{self.tech_node_um!r},vdd:{self.vdd_v!r}"

    def to_payload(self) -> Dict[str, Any]:
        return {
            "tech_node_um": self.tech_node_um,
            "vdd_v": self.vdd_v,
            "max_power_mw": self.max_power_mw,
            "max_energy_nj": self.max_energy_nj,
            "objective": self.objective,
        }

    @classmethod
    def from_payload(
        cls, payload: Optional[Dict[str, Any]]
    ) -> Optional["PowerConfig"]:
        if payload is None:
            return None
        return cls(
            tech_node_um=payload.get("tech_node_um"),
            vdd_v=payload.get("vdd_v"),
            max_power_mw=payload.get("max_power_mw"),
            max_energy_nj=payload.get("max_energy_nj"),
            objective=bool(payload.get("objective", True)),
        )


@dataclass(frozen=True)
class PowerReport:
    """Energy and power of one implementation at one operating point."""

    energy_nj: float
    dynamic_nj: float
    leakage_nj: float
    power_mw: float
    dynamic_power_mw: float
    leakage_power_mw: float
    vdd_v: float
    frequency_mhz: float


@dataclass(frozen=True)
class PowerModel:
    """Prices implementations at a fixed operating point."""

    operating_point: OperatingPoint

    @classmethod
    def for_spec(
        cls, feature_um: float, config: PowerConfig
    ) -> "PowerModel":
        return cls(operating_point=config.operating_point(feature_um))

    @property
    def frequency_scale(self) -> float:
        """DVFS clock ratio vs nominal (exactly 1.0 at nominal Vdd)."""
        return self.operating_point.frequency_scale

    def _report(
        self,
        dynamic_nj: float,
        stored_bits: float,
        items_per_s: float,
        frequency_mhz: float,
    ) -> PowerReport:
        if items_per_s <= 0:
            raise ConfigurationError("item rate must be positive")
        op = self.operating_point
        leak_mw = leakage_power_mw(stored_bits, op.node, op.vdd_v)
        leak_nj = leak_mw * 1e6 / items_per_s
        dyn_mw = dynamic_nj * items_per_s * 1e-6
        return PowerReport(
            energy_nj=dynamic_nj + leak_nj,
            dynamic_nj=dynamic_nj,
            leakage_nj=leak_nj,
            power_mw=dyn_mw + leak_mw,
            dynamic_power_mw=dyn_mw,
            leakage_power_mw=leak_mw,
            vdd_v=op.vdd_v,
            frequency_mhz=frequency_mhz,
        )

    def _supply_scale(self) -> float:
        """Capacitance x V^2 scaling from the 0.35 um / 3.3 V anchor."""
        op = self.operating_point
        return (
            op.node.capacitance_factor
            * (op.vdd_v / VDD_REFERENCE_V) ** 2
        )

    def viterbi_report(
        self,
        program: LeveledProgram,
        machine: MachineConfig,
        bits_per_s: float,
    ) -> PowerReport:
        """Energy per decoded bit and average power of a VLIW decoder.

        Dynamic energy re-quotes :func:`estimate_energy` at the anchor
        feature (stripping its built-in cube-law, which bakes in an
        implied voltage) and applies the node's capacitance factor and
        the explicit V^2 of the configured supply.
        """
        anchor = replace(machine, feature_um=TR4101_FEATURE_UM)
        base = estimate_energy(program, anchor)
        dynamic_nj = base.total_nj * self._supply_scale()
        stored_bits = (
            program.storage_bits
            + machine.regfile_words * machine.datapath_width
        )
        return self._report(
            dynamic_nj=dynamic_nj,
            stored_bits=stored_bits,
            items_per_s=bits_per_s,
            frequency_mhz=self.operating_point.frequency_mhz(
                machine.datapath_width
            ),
        )

    def iir_report(
        self,
        stats: DataflowStats,
        word_length: int,
        estimate: SynthesisEstimate,
    ) -> PowerReport:
        """Energy per output sample and average power of an IIR datapath.

        Multiplies scale quadratically with the word length (array
        multiplier), additions linearly; every scheduled cycle charges
        the clock tree of each functional unit.
        """
        width = word_length / TR4101_WIDTH_BITS
        units = estimate.n_multipliers + estimate.n_adders
        operation_pj = (
            stats.multiplies * MULT_ENERGY_PJ * width**2
            + stats.additions * ALU_ENERGY_PJ * width
        )
        overhead_pj = (
            estimate.cycles_per_sample
            * units
            * CYCLE_OVERHEAD_PJ_PER_SLOT
            * width
        )
        dynamic_nj = (
            (operation_pj + overhead_pj) / 1000.0 * self._supply_scale()
        )
        return self._report(
            dynamic_nj=dynamic_nj,
            stored_bits=estimate.n_registers * word_length,
            items_per_s=estimate.throughput_samples_per_s,
            frequency_mhz=1000.0 / estimate.clock_ns,
        )
