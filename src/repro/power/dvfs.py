"""DVFS operating points with Vdd/Vth-derived frequency bounds.

The clock model in :mod:`repro.hardware.clock` answers "how fast is
this feature size at its *nominal* supply"; dynamic voltage/frequency
scaling trades that speed against energy by moving the supply.  The
achievable frequency follows the alpha-power-law delay model::

    f(vdd)  ∝  (vdd - vth)^alpha / vdd

normalized so that the nominal supply reproduces ``clock_mhz`` exactly
— a power-enabled evaluation at nominal Vdd prices the *same* machines
as a power-disabled one, which the bit-identity gates rely on.

The usable supply window is bounded the way lumos bounds it: an upper
overdrive ratio above nominal, and a lower bound a safety margin above
the threshold voltage (the alpha-power law collapses to zero frequency
at vth; real near-threshold operation stops well before that).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError
from repro.hardware.clock import TR4101_WIDTH_BITS, clock_mhz
from repro.power.technology import TechnologyNode

#: Velocity-saturation exponent of the alpha-power delay model (short
#: channel devices; alpha = 2 would be the classic long-channel law).
ALPHA = 1.3

#: Largest overdrive supply, as a ratio of the nominal Vdd.
DVFS_UPPER_RATIO = 1.3

#: The supply must clear the threshold by this margin (volts) — below
#: it the delay model diverges and circuits stop switching reliably.
NEAR_THRESHOLD_MARGIN_V = 0.15


def dvfs_bounds(node: TechnologyNode) -> Tuple[float, float]:
    """(lowest, highest) usable supply voltage of a technology node."""
    return (
        node.vth_v + NEAR_THRESHOLD_MARGIN_V,
        node.vdd_nominal_v * DVFS_UPPER_RATIO,
    )


def frequency_scale(node: TechnologyNode, vdd_v: float) -> float:
    """Clock-frequency ratio at ``vdd_v`` relative to the nominal supply.

    Exactly 1.0 at ``node.vdd_nominal_v`` (the numerator and the
    normalizer are the same expression, so the ratio is bit-exact),
    strictly increasing in Vdd over the usable window.
    """
    low, high = dvfs_bounds(node)
    if not low <= vdd_v <= high:
        raise ConfigurationError(
            f"vdd {vdd_v:.3g} V outside the {low:.3g}-{high:.3g} V DVFS "
            f"window of the {node.feature_um:g} um node"
        )
    scaled = (vdd_v - node.vth_v) ** ALPHA / vdd_v
    nominal = (node.vdd_nominal_v - node.vth_v) ** ALPHA / node.vdd_nominal_v
    return scaled / nominal


def max_frequency_mhz(
    node: TechnologyNode,
    vdd_v: float,
    width_bits: int = TR4101_WIDTH_BITS,
) -> float:
    """Maximum clock rate of a node at a supply voltage.

    Anchored so that ``max_frequency_mhz(node, node.vdd_nominal_v, w)``
    equals ``clock_mhz(node.feature_um, w)`` exactly.
    """
    return clock_mhz(node.feature_um, width_bits) * frequency_scale(
        node, vdd_v
    )


@dataclass(frozen=True)
class OperatingPoint:
    """One chosen (technology node, supply voltage) pair.

    Validates the supply against the node's DVFS window at construction
    so every downstream consumer can assume a legal operating point.
    """

    node: TechnologyNode
    vdd_v: float

    def __post_init__(self) -> None:
        low, high = dvfs_bounds(self.node)
        if not low <= self.vdd_v <= high:
            raise ConfigurationError(
                f"vdd {self.vdd_v:.3g} V outside the {low:.3g}-{high:.3g} V "
                f"DVFS window of the {self.node.feature_um:g} um node"
            )

    @classmethod
    def nominal(cls, node: TechnologyNode) -> "OperatingPoint":
        return cls(node=node, vdd_v=node.vdd_nominal_v)

    @property
    def frequency_scale(self) -> float:
        """Clock ratio vs the nominal supply (1.0 exactly at nominal)."""
        return frequency_scale(self.node, self.vdd_v)

    def frequency_mhz(self, width_bits: int = TR4101_WIDTH_BITS) -> float:
        return max_frequency_mhz(self.node, self.vdd_v, width_bits)
