"""Technology-node scaling tables (feature size -> electrical knobs).

The area and energy models scale everything off the TR4101's 0.35 um
generation with closed-form exponents; what they cannot express is that
each fabrication generation also fixes *electrical* operating
conditions — the nominal supply, the threshold voltage, and how leaky
a stored bit is.  This module pins those per-node values the way lumos
pins its ``vdd_scl``/``vth_base`` tables: a small anchored table over
the generations our cost models span (HYPER's 1.2 um library down to
0.13 um), log-interpolated for feature sizes between the anchors.

The 0.35 um row is the anchor of the whole power subsystem: its
nominal supply (3.3 V) is the reference voltage of the per-operation
energies in :mod:`repro.hardware.power`, and its leakage factor is 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError
from repro.hardware.clock import TR4101_FEATURE_UM

#: Nominal supply of the anchor generation — the voltage the
#: per-operation energy constants in ``hardware/power.py`` are quoted
#: at (LSI Logic's 0.35 um process ran at 3.3 V).
VDD_REFERENCE_V = 3.3


@dataclass(frozen=True)
class TechnologyNode:
    """Electrical operating conditions of one fabrication generation.

    ``leakage_factor`` is the per-bit standby leakage relative to the
    0.35 um anchor: essentially flat in the 5 V generations, growing
    steeply below 0.25 um as thresholds drop (the classic subthreshold
    trend the cacti-p style storage models capture).
    """

    feature_um: float
    vdd_nominal_v: float
    vth_v: float
    leakage_factor: float

    def __post_init__(self) -> None:
        if self.feature_um <= 0:
            raise ConfigurationError("feature size must be positive")
        if not 0 < self.vth_v < self.vdd_nominal_v:
            raise ConfigurationError(
                "threshold voltage must lie below the nominal supply"
            )
        if self.leakage_factor <= 0:
            raise ConfigurationError("leakage factor must be positive")

    @property
    def capacitance_factor(self) -> float:
        """Switched capacitance per operation relative to 0.35 um.

        Gate/wire capacitance shrinks linearly with feature size
        (constant-field scaling), which is the same assumption the
        cube-law in ``hardware/power.py`` decomposes into C * V^2.
        """
        return self.feature_um / TR4101_FEATURE_UM


#: The anchored generations, largest feature first.  Voltages are the
#: textbook nominal supplies of each era; thresholds follow the
#: roughly-constant vth/vdd ratio until the deep-submicron rows.
TECHNOLOGY_NODES: Tuple[TechnologyNode, ...] = (
    TechnologyNode(1.2, 5.0, 0.90, 0.20),
    TechnologyNode(0.8, 5.0, 0.80, 0.40),
    TechnologyNode(0.6, 3.3, 0.70, 0.60),
    TechnologyNode(TR4101_FEATURE_UM, VDD_REFERENCE_V, 0.60, 1.00),
    TechnologyNode(0.25, 2.5, 0.55, 2.50),
    TechnologyNode(0.18, 1.8, 0.45, 6.00),
    TechnologyNode(0.13, 1.3, 0.35, 20.00),
)

_MIN_FEATURE = TECHNOLOGY_NODES[-1].feature_um
_MAX_FEATURE = TECHNOLOGY_NODES[0].feature_um


def _log_interpolate(
    feature: float, lo: TechnologyNode, hi: TechnologyNode, attr: str
) -> float:
    """Log-log interpolation between two anchor rows (exact at both)."""
    a, b = getattr(hi, attr), getattr(lo, attr)
    if a == b:
        return a
    t = (math.log(feature) - math.log(hi.feature_um)) / (
        math.log(lo.feature_um) - math.log(hi.feature_um)
    )
    return math.exp((1.0 - t) * math.log(a) + t * math.log(b))


def technology_node(feature_um: float) -> TechnologyNode:
    """The electrical conditions at ``feature_um``.

    Anchor features return their table row verbatim; features between
    anchors are log-log interpolated (monotone between rows, exact at
    them).  Features outside the covered 0.13-1.2 um span are an
    error — the models are not calibrated there.
    """
    if feature_um <= 0:
        raise ConfigurationError("feature size must be positive")
    if not _MIN_FEATURE <= feature_um <= _MAX_FEATURE:
        raise ConfigurationError(
            f"feature size {feature_um} um outside the calibrated "
            f"{_MIN_FEATURE}-{_MAX_FEATURE} um technology span"
        )
    # The table is sorted largest-feature first: the last row above the
    # query and the first row below it bracket the interpolation.
    above = TECHNOLOGY_NODES[0]
    for node in TECHNOLOGY_NODES:
        if node.feature_um == feature_um:
            return node
        if node.feature_um > feature_um:
            above = node
        else:
            below = node
            break
    return TechnologyNode(
        feature_um=feature_um,
        vdd_nominal_v=_log_interpolate(
            feature_um, below, above, "vdd_nominal_v"
        ),
        vth_v=_log_interpolate(feature_um, below, above, "vth_v"),
        leakage_factor=_log_interpolate(
            feature_um, below, above, "leakage_factor"
        ),
    )
