"""Command-line interface — the stand-in for the paper's GUI (Fig. 7).

The original experimentation platform was a Windows application in
which "the user can specify most of the algorithmic and hardware
related parameters"; this CLI exposes the same controls::

    metacores viterbi-search --ber 1e-4 --es-n0-db 3 --throughput 2e6
    metacores viterbi-ber    --k 5 --l-mult 5 --m 4 --r2 3 --snr 0 1 2 3 4
    metacores iir-search     --period-us 1.0
    metacores iir-design     --family elliptic --structure cascade --word 12
    metacores spectrum       --k 7
    metacores viterbi-search --ber 1e-2 --throughput 1e6 --trace run.jsonl
    metacores trace-report   run.jsonl
    metacores viterbi-search --ber 1e-2 --throughput 1e6 \
                             --checkpoint run.ckpt --resume
    metacores inject-campaign --k 5 --m 4 --rates 1e-4 1e-3 --out camp.json
    metacores campaign-report camp.json
    metacores serve --port 7777 --workers 4 --cache eval-cache.jsonl
    metacores client eval --port 7777 --metacore viterbi \
                          --ber 1e-2 --throughput 1e6 --k 5 --fidelity 1
    metacores client search --port 7777 --metacore iir --period-us 1.0
    metacores client status --port 7777
    metacores sweep --metacore viterbi --atlas atlas.jsonl \
                    --specs 1e-2:1e6 1e-2:2e6 1e-4:2e6
    metacores recommend --metacore viterbi --atlas atlas.jsonl \
                        --ber 1e-2 --throughput 1e6 --constraint area_mm2=40
    metacores atlas-report atlas.jsonl
    metacores viterbi-search --ber 1e-2 --throughput 1e6 --atlas atlas.jsonl
    metacores client recommend --port 7777 --metacore iir --period-us 1.0

Run ``metacores <command> --help`` for the full parameter list of each
command.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import math
import sys
from typing import Iterator, List, Optional

from repro.core import BERThresholdCurve, SearchConfig
from repro.core.parallel import shutdown_all_pools
from repro.errors import ConfigurationError
from repro.observability import (
    format_trace_report,
    install_tracing,
    shutdown_tracing,
    summarize_trace,
)
from repro.iir import (
    IIRMetaCore,
    IIRSpec,
    available_structures,
    check_quantized,
    design_filter,
    paper_bandpass_spec,
    realize,
)
from repro.iir.design import FILTER_FAMILIES
from repro.power import PowerConfig
from repro.resilience import (
    Campaign,
    CampaignConfig,
    CampaignResult,
    FAULT_MODELS,
    RoundBudgetExceeded,
    STORAGE_CLASSES,
    format_campaign_report,
)
from repro.viterbi import (
    BERSimulator,
    ConvolutionalEncoder,
    ViterbiMetaCore,
    ViterbiSpec,
    build_decoder,
    describe_point,
    distance_spectrum,
    normalize_viterbi_point,
)


def _add_trace_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write spans/metrics/events of this run to a JSONL trace file "
        "(inspect with `metacores trace-report FILE`)",
    )


@contextlib.contextmanager
def _tracing(args: argparse.Namespace) -> Iterator[None]:
    """Record the run to ``--trace FILE`` when requested; else no-op."""
    trace_path = getattr(args, "trace", None)
    if not trace_path:
        yield
        return
    try:
        sink = install_tracing(trace_path)
    except OSError as error:
        print(f"cannot open trace file: {error}", file=sys.stderr)
        raise SystemExit(2)
    try:
        yield
    finally:
        shutdown_tracing(sink)
        print(f"trace written to {trace_path} ({sink.n_records} records)")


def _add_kernel_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--kernel",
        choices=("fused", "reference"),
        default="fused",
        help="decode kernel used by Viterbi cost evaluation: the fused "
        "lookup-table kernels (default) or the step-by-step reference "
        "loop; results are bit-identical, only wall-clock differs",
    )


def _add_strategy_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--strategy",
        choices=("grid", "evolve", "surrogate"),
        default="grid",
        help="exploration strategy: the multiresolution grid funnel "
        "(default), seeded evolutionary search, or surrogate-model "
        "pruned grid rounds (see docs/search-strategies.md)",
    )


def _add_parallel_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="evaluate grid points over N worker processes (default 1 = "
        "serial; results are bit-identical either way)",
    )
    parser.add_argument(
        "--cache",
        metavar="FILE",
        default=None,
        help="persistent evaluation cache (JSONL); reruns of the same "
        "specification start warm and skip already-priced points",
    )


def _add_atlas_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--atlas",
        metavar="FILE",
        default=None,
        help="persistent design atlas (JSONL); searches warm-start from "
        "stored frontiers and ingest their results back "
        "(inspect with `metacores atlas-report FILE`)",
    )


def _add_power_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--power",
        action="store_true",
        help="enable power-aware pricing: energy joins the objectives "
        "and metrics (see docs/power.md); off by default, so results "
        "stay bit-identical to the classic cost engine",
    )
    parser.add_argument(
        "--tech-node", type=float, default=None, metavar="UM",
        help="technology node (um) to price energy at; defaults to the "
        "specification's own feature size",
    )
    parser.add_argument(
        "--vdd", type=float, default=None, metavar="V",
        help="DVFS supply voltage; defaults to the node's nominal Vdd "
        "(below nominal slows the clock but saves quadratic energy)",
    )
    parser.add_argument(
        "--max-power-mw", type=float, default=None, metavar="MW",
        help="average-power cap (constraint on power_mw)",
    )
    parser.add_argument(
        "--max-energy-nj", type=float, default=None, metavar="NJ",
        help="energy cap per decoded bit / output sample",
    )


def _power_config(args: argparse.Namespace) -> Optional[PowerConfig]:
    """The ``PowerConfig`` the ``--power`` flags describe (None = off)."""
    if not getattr(args, "power", False):
        for flag, name in (
            ("tech_node", "--tech-node"),
            ("vdd", "--vdd"),
            ("max_power_mw", "--max-power-mw"),
            ("max_energy_nj", "--max-energy-nj"),
        ):
            if getattr(args, flag, None) is not None:
                raise ConfigurationError(
                    f"{name} has no effect without --power"
                )
        return None
    return PowerConfig(
        tech_node_um=args.tech_node,
        vdd_v=args.vdd,
        max_power_mw=args.max_power_mw,
        max_energy_nj=args.max_energy_nj,
    )


def _print_energy_line(metrics: dict) -> None:
    """One report line for the energy metrics, when priced."""
    for key, unit in (
        ("energy_nj_per_bit", "nJ/bit"),
        ("energy_nj_per_sample", "nJ/sample"),
    ):
        if key in metrics:
            print(
                f"energy = {metrics[key]:.4g} {unit}, "
                f"power = {metrics.get('power_mw', math.nan):.4g} mW"
            )
            return


def _parse_constraints(pairs: Optional[List[str]]) -> dict:
    """``NAME=VALUE`` pairs into a metric -> upper-bound dict."""
    constraints = {}
    for pair in pairs or []:
        name, sep, value = pair.partition("=")
        if not sep or not name:
            raise ConfigurationError(
                f"constraint {pair!r} is not NAME=VALUE"
            )
        try:
            constraints[name] = float(value)
        except ValueError:
            raise ConfigurationError(
                f"constraint {pair!r} has a non-numeric bound"
            ) from None
    return constraints


#: Storage classes a Viterbi campaign can inject (IIR state is driven
#: through the library API, not this subcommand).
_VITERBI_TARGETS = tuple(c for c in STORAGE_CLASSES if c != "iir_state")


def _add_checkpoint_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--checkpoint",
        metavar="FILE",
        default=None,
        help="write an atomic per-round session checkpoint to FILE; a "
        "crashed or aborted run continues with --resume",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume from --checkpoint instead of starting cold",
    )
    parser.add_argument(
        "--max-rounds",
        type=int,
        default=None,
        metavar="N",
        help="abort after N computed evaluation rounds (checkpoint "
        "intact, exit code 3); mainly for tests and CI",
    )
    parser.add_argument(
        "--resilient",
        action="store_true",
        help="retry and quarantine failing evaluations instead of "
        "aborting the whole search",
    )


def _run_search(metacore, args: argparse.Namespace):
    """Run a facade search, checkpointed when ``--checkpoint`` is set.

    Returns ``(result, session_or_None)``.
    """
    if getattr(args, "checkpoint", None):
        metacore.checkpoint_path = args.checkpoint
        metacore.resume = args.resume
        metacore.max_rounds = args.max_rounds
        metacore.resilient = args.resilient
        session = metacore.search_session()
        return session.result, session
    return metacore.search(), None


def _add_viterbi_point_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--k", type=int, default=5, help="constraint length K")
    parser.add_argument(
        "--l-mult", type=int, default=5, help="trace-back depth in multiples of K"
    )
    parser.add_argument("--r1", type=int, default=1, help="low-resolution bits R1")
    parser.add_argument("--r2", type=int, default=3, help="high-resolution bits R2")
    parser.add_argument(
        "--q",
        choices=("hard", "fixed", "adaptive"),
        default="adaptive",
        help="quantization method Q",
    )
    parser.add_argument("--n", type=int, default=1, help="normalization branches N")
    parser.add_argument(
        "--m", type=int, default=0, help="multiresolution paths M (0 = pure)"
    )


def _point_from_args(args: argparse.Namespace) -> dict:
    return normalize_viterbi_point(
        {
            "K": args.k,
            "L_mult": args.l_mult,
            "G": "standard",
            "R1": args.r1,
            "R2": args.r2,
            "Q": args.q,
            "N": args.n,
            "M": args.m,
        }
    )


def cmd_viterbi_ber(args: argparse.Namespace) -> int:
    """Measure the BER curve of one decoder instance."""
    point = _point_from_args(args)
    decoder = build_decoder(point, kernel=args.kernel)
    encoder = ConvolutionalEncoder(int(point["K"]))
    simulator = BERSimulator(
        encoder, seed=args.seed, adaptive_batching=args.kernel == "fused"
    )
    print(f"instance: {describe_point(point)}")
    for es_n0_db in args.snr:
        measurement = simulator.measure(
            decoder, es_n0_db, max_bits=args.bits, target_errors=args.errors
        )
        print(f"  {measurement}")
    return 0


def cmd_viterbi_search(args: argparse.Namespace) -> int:
    """Run the multiresolution search for a (BER, throughput) spec."""
    try:
        power = _power_config(args)
    except ConfigurationError as error:
        print(f"invalid request: {error}", file=sys.stderr)
        return 2
    spec = ViterbiSpec(
        throughput_bps=args.throughput,
        ber_curve=BERThresholdCurve.single(args.es_n0_db, args.ber),
        feature_um=args.feature_um,
        power=power,
    )
    config = SearchConfig(
        max_resolution=args.max_resolution, refine_top_k=args.top_k, strategy=args.strategy
    )
    metacore = ViterbiMetaCore(
        spec,
        fixed={"G": "standard", "N": 1},
        config=config,
        workers=args.workers,
        cache_path=args.cache,
        atlas_path=args.atlas,
        kernel=args.kernel,
    )
    with _tracing(args):
        try:
            result, session = _run_search(metacore, args)
        except RoundBudgetExceeded as stop:
            print(
                f"round budget exhausted after {stop.rounds} computed "
                f"rounds; checkpoint saved at {stop.checkpoint_path} "
                "(rerun with --resume to continue)"
            )
            return 3
    print(session.summary() if session is not None else result.summary())
    if result.best_point is not None:
        print(f"winner: {describe_point(result.best_point)}")
        metrics = result.best_metrics
        print(
            f"area = {metrics['area_mm2']:.2f} mm^2, "
            f"measured BER = {metrics.get('ber', math.nan):.3e} "
            f"(threshold {args.ber:g} at {args.es_n0_db:g} dB)"
        )
        _print_energy_line(metrics)
    if not result.feasible:
        print("specification NOT FEASIBLE within the design space")
        return 1
    return 0


def cmd_spectrum(args: argparse.Namespace) -> int:
    """Print the distance spectrum of the standard code for K."""
    encoder = ConvolutionalEncoder(args.k)
    spectrum = distance_spectrum(encoder)
    print(f"{encoder}")
    print(f"free distance: {spectrum.free_distance}")
    for distance, weight in spectrum.weights:
        print(f"  d={distance}: input-weight {weight:g}")
    return 0


def cmd_diagram(args: argparse.Namespace) -> int:
    """Draw the encoder (and optionally one trellis section)."""
    from repro.viterbi import encoder_diagram, trellis_section_diagram

    encoder = ConvolutionalEncoder(args.k)
    print(encoder_diagram(encoder))
    if args.trellis:
        print()
        print(trellis_section_diagram(encoder))
    return 0


def cmd_iir_noise(args: argparse.Namespace) -> int:
    """Compare round-off noise across realization structures."""
    from repro.iir import compare_structure_noise

    spec = paper_bandpass_spec()
    tf = design_filter(spec, args.family).to_tf()
    names = [
        name for name in available_structures() if name != "continued"
    ]
    print(
        f"round-off noise of the {args.family} band-pass design "
        f"(data word {args.word} bits):"
    )
    print(f"{'structure':>11s} {'noise gain':>11s} {'output noise':>13s}")
    for report_item in compare_structure_noise(tf, names):
        print(
            f"{report_item.structure:>11s} "
            f"{report_item.noise_gain:11.1f} "
            f"{report_item.output_noise_db(args.word):10.1f} dB"
        )
    return 0


def cmd_iir_search(args: argparse.Namespace) -> int:
    """Run the IIR MetaCore search at one sample period."""
    try:
        power = _power_config(args)
    except ConfigurationError as error:
        print(f"invalid request: {error}", file=sys.stderr)
        return 2
    spec = IIRSpec.paper(args.period_us, power=power)
    config = SearchConfig(
        max_resolution=args.max_resolution, refine_top_k=args.top_k, strategy=args.strategy
    )
    metacore = IIRMetaCore(
        spec,
        config=config,
        workers=args.workers,
        cache_path=args.cache,
        atlas_path=args.atlas,
    )
    with _tracing(args):
        try:
            result, session = _run_search(metacore, args)
        except RoundBudgetExceeded as stop:
            print(
                f"round budget exhausted after {stop.rounds} computed "
                f"rounds; checkpoint saved at {stop.checkpoint_path} "
                "(rerun with --resume to continue)"
            )
            return 3
    print(session.summary() if session is not None else result.summary())
    if result.best_metrics is not None:
        _print_energy_line(result.best_metrics)
    if not result.feasible:
        print("specification NOT FEASIBLE within the design space")
        return 1
    return 0


def cmd_iir_design(args: argparse.Namespace) -> int:
    """Design, realize, and quantize one IIR candidate; exit 1 on spec miss."""
    from repro.iir.metacore import _margin_spec

    spec = paper_bandpass_spec()
    designed = design_filter(_margin_spec(spec, args.allocation), args.family)
    tf = designed.to_tf()
    realization = realize(args.structure, tf)
    report = check_quantized(realization, spec, args.word)
    stats = realization.dataflow()
    print(f"{args.family} prototype order {designed.order} "
          f"(digital order {tf.order}) as {args.structure}")
    print(f"  ops/sample: {stats.multiplies} mult, {stats.additions} add, "
          f"{stats.delays} delays")
    print(f"  at {args.word} bits: stable={report.stable} "
          f"ripple={report.passband_ripple:.5f} "
          f"stopband={report.stopband_level:.5f} "
          f"meets spec={report.meets(spec)}")
    return 0 if report.meets(spec) else 1


def cmd_table3(args: argparse.Namespace) -> int:
    """Reproduce the paper's Table 3 with a specification sweep."""
    from repro.core.batch import SpecificationSweep

    specs = [(1e-2, 5e6), (1e-4, 2e6), (1e-5, 1e6), (1e-5, 3e6), (1e-9, 1e6)]

    def run(spec_pair):
        max_ber, throughput = spec_pair
        spec = ViterbiSpec(
            throughput_bps=throughput,
            ber_curve=BERThresholdCurve.single(args.es_n0_db, max_ber),
        )
        metacore = ViterbiMetaCore(
            spec, fixed={"G": "standard", "N": 1},
            config=SearchConfig(
                max_resolution=args.max_resolution, refine_top_k=args.top_k, strategy=args.strategy
            ),
            workers=args.workers,
            cache_path=args.cache,
            kernel=args.kernel,
        )
        return metacore.search()

    sweep = SpecificationSweep(runner=run, feasibility_metric="ber_violation")
    with _tracing(args):
        sweep.run(
            specs,
            labels=[f"{b:g}@{t / 1e6:g}Mbps" for b, t in specs],
        )
    print(
        sweep.format_table(
            extra_columns={
                "instance": lambda row: (
                    describe_point(row.result.best_point)
                    if row.feasible
                    else "-"
                )
            }
        )
    )
    return 0


def cmd_table4(args: argparse.Namespace) -> int:
    """Reproduce the paper's Table 4 with a specification sweep."""
    from repro.core.batch import SpecificationSweep

    periods = [5.0, 4.0, 3.0, 2.0, 1.0, 0.5, 0.25]

    def run(period):
        metacore = IIRMetaCore(
            IIRSpec.paper(period),
            config=SearchConfig(
                max_resolution=args.max_resolution, refine_top_k=args.top_k, strategy=args.strategy
            ),
            workers=args.workers,
            cache_path=args.cache,
        )
        return metacore.search()

    sweep = SpecificationSweep(runner=run)
    with _tracing(args):
        sweep.run(periods, labels=[f"{p:g} us" for p in periods])
    print(
        sweep.format_table(
            extra_columns={
                "structure": lambda row: (
                    str(row.result.best_point["structure"])
                    if row.feasible
                    else "-"
                )
            }
        )
    )
    return 0


def _recommend_metacore(args: argparse.Namespace):
    """The facade a `recommend`/`sweep` invocation addresses."""
    config = SearchConfig(
        max_resolution=args.max_resolution, refine_top_k=args.top_k, strategy=args.strategy
    )
    power = _power_config(args)
    if args.metacore == "viterbi":
        if args.ber is None or args.throughput is None:
            raise ConfigurationError(
                "viterbi recommendations need --ber and --throughput"
            )
        spec = ViterbiSpec(
            throughput_bps=args.throughput,
            ber_curve=BERThresholdCurve.single(args.es_n0_db, args.ber),
            feature_um=args.feature_um,
            power=power,
        )
        return ViterbiMetaCore(
            spec,
            fixed={"G": "standard", "N": 1},
            config=config,
            workers=args.workers,
            cache_path=args.cache,
            atlas_path=args.atlas,
        )
    if args.period_us is None:
        raise ConfigurationError("iir recommendations need --period-us")
    return IIRMetaCore(
        IIRSpec.paper(args.period_us, power=power),
        config=config,
        workers=args.workers,
        cache_path=args.cache,
        atlas_path=args.atlas,
    )


def cmd_recommend(args: argparse.Namespace) -> int:
    """Answer a constraint query from the design atlas."""
    try:
        constraints = _parse_constraints(args.constraint)
        metacore = _recommend_metacore(args)
    except ConfigurationError as error:
        print(f"invalid request: {error}", file=sys.stderr)
        return 2
    with _tracing(args):
        recommendation = metacore.recommend(constraints or None)
    print(recommendation.summary())
    if args.metacore == "viterbi" and recommendation.point is not None:
        print(f"instance: {describe_point(recommendation.point)}")
    return 0 if recommendation.feasible else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    """Populate the atlas from a portfolio of specifications."""
    config = SearchConfig(
        max_resolution=args.max_resolution, refine_top_k=args.top_k, strategy=args.strategy
    )
    try:
        power = _power_config(args)
        if args.metacore == "viterbi":
            if not args.specs:
                raise ConfigurationError(
                    "viterbi sweeps need --specs BER:THROUGHPUT ..."
                )
            pairs = []
            for token in args.specs:
                ber_s, sep, thr_s = token.partition(":")
                if not sep:
                    raise ConfigurationError(
                        f"spec {token!r} is not BER:THROUGHPUT"
                    )
                pairs.append((float(ber_s), float(thr_s)))
            specs = [
                ViterbiSpec(
                    throughput_bps=throughput,
                    ber_curve=BERThresholdCurve.single(args.es_n0_db, ber),
                    feature_um=args.feature_um,
                    power=power,
                )
                for ber, throughput in pairs
            ]
            labels = [f"{b:g}@{t / 1e6:g}Mbps" for b, t in pairs]
            prototype = ViterbiMetaCore(
                specs[0],
                fixed={"G": "standard", "N": 1},
                config=config,
                workers=args.workers,
                cache_path=args.cache,
                atlas_path=args.atlas,
            )
        else:
            if not args.periods:
                raise ConfigurationError("iir sweeps need --periods ...")
            specs = [
                IIRSpec.paper(period, power=power)
                for period in args.periods
            ]
            labels = [f"{period:g} us" for period in args.periods]
            prototype = IIRMetaCore(
                specs[0],
                config=config,
                workers=args.workers,
                cache_path=args.cache,
                atlas_path=args.atlas,
            )
    except (ConfigurationError, ValueError) as error:
        print(f"invalid sweep: {error}", file=sys.stderr)
        return 2
    with _tracing(args):
        outcome = prototype.sweep(specs, labels=labels)
    print(outcome.format_table())
    return 0


def cmd_atlas_report(args: argparse.Namespace) -> int:
    """Summarize a design-atlas file: scenarios, frontiers, stats."""
    from repro.atlas import DesignAtlas, format_atlas_report

    try:
        atlas = DesignAtlas(args.file)
    except OSError as error:
        print(f"cannot read atlas file: {error}", file=sys.stderr)
        return 1
    print(format_atlas_report(atlas))
    return 0


def cmd_inject_campaign(args: argparse.Namespace) -> int:
    """Sweep fault rate x storage class over one decoder instance."""
    point = _point_from_args(args)
    try:
        config = CampaignConfig(
            model=args.model,
            rates=tuple(args.rates),
            targets=tuple(args.targets),
            es_n0_db=tuple(args.snr),
            max_bits=args.bits,
            word_bits=args.word_bits,
            frac_bits=args.frac_bits,
            seed=args.seed,
        )
    except ConfigurationError as error:
        print(f"invalid campaign: {error}", file=sys.stderr)
        return 2
    campaign = Campaign(
        [point], config, workers=args.workers, cache_path=args.cache
    )
    with _tracing(args):
        result = campaign.run()
    print(format_campaign_report(result))
    if args.out:
        result.save(args.out)
        print(f"campaign results written to {args.out}")
    return 0


def cmd_campaign_report(args: argparse.Namespace) -> int:
    """Re-render the report of a saved campaign result file."""
    try:
        result = CampaignResult.load(args.file)
    except (OSError, ValueError, ConfigurationError) as error:
        print(f"cannot read campaign file: {error}", file=sys.stderr)
        return 1
    print(format_campaign_report(result))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the evaluation service until shutdown (Ctrl-C or client op)."""
    from repro.serve import ServiceConfig
    from repro.serve.server import serve_forever

    config = ServiceConfig(
        max_batch=args.max_batch,
        linger_s=args.linger_ms / 1000.0,
        max_pending=args.max_pending,
        request_timeout_s=args.timeout_s,
        workers=args.workers,
        cache_path=args.cache,
        resilient=args.resilient,
        atlas_path=args.atlas,
        node_id=args.node_id,
    )

    def on_ready(server) -> None:
        print(f"serving on {server.address}", flush=True)

    try:
        asyncio.run(
            serve_forever(
                config,
                host=args.host,
                port=args.port,
                unix_path=args.unix,
                ready_callback=on_ready,
            )
        )
    except KeyboardInterrupt:
        pass
    finally:
        print("server stopped")
    return 0


def _client_spec_payload(args: argparse.Namespace) -> dict:
    """Build the wire spec payload a client subcommand describes."""
    from repro.iir import IIRSpec
    from repro.serve import spec_to_payload

    power = _power_config(args)
    if args.metacore == "viterbi":
        if args.ber is None or args.throughput is None:
            raise ConfigurationError(
                "viterbi requests need --ber and --throughput"
            )
        spec = ViterbiSpec(
            throughput_bps=args.throughput,
            ber_curve=BERThresholdCurve.single(args.es_n0_db, args.ber),
            feature_um=args.feature_um,
            seed=args.seed,
            power=power,
        )
    else:
        if args.period_us is None:
            raise ConfigurationError("iir requests need --period-us")
        spec = IIRSpec.paper(args.period_us, power=power)
    return spec_to_payload(spec)


def _client_point(args: argparse.Namespace) -> dict:
    if args.metacore == "viterbi":
        return _point_from_args(args)
    return {
        "structure": args.structure,
        "family": args.family,
        "word_length": args.word,
        "ripple_allocation": args.allocation,
    }


def _router_address(value: str):
    """Parse a ``HOST:PORT`` / ``unix:PATH`` address flag."""
    if value.startswith("unix:"):
        return None, None, value[len("unix:"):]
    host, sep, port_s = value.rpartition(":")
    if not sep or not host:
        raise ConfigurationError(
            f"address {value!r} is not HOST:PORT or unix:PATH"
        )
    try:
        port = int(port_s)
    except ValueError:
        raise ConfigurationError(
            f"address {value!r} has a non-numeric port"
        ) from None
    return host, port, None


def _client_connect(args: argparse.Namespace):
    from repro.serve import ServeClient

    host, port, unix_path = args.host, args.port, args.unix
    router = getattr(args, "router", None)
    if router:
        host, port, unix_path = _router_address(router)
        host = host or "127.0.0.1"
    return ServeClient(host=host, port=port, unix_path=unix_path)


def cmd_client(args: argparse.Namespace) -> int:
    """Talk to a running evaluation service."""
    from repro.serve import ServeConnectionError, ServeRequestError

    try:
        with _client_connect(args) as client:
            if args.client_command == "status":
                print(json.dumps(client.status(), indent=2, sort_keys=True))
                return 0
            if args.client_command == "shutdown":
                client.shutdown()
                print("server stopping")
                return 0
            if args.client_command == "drain":
                result = client.drain()
                print(json.dumps(result, indent=2, sort_keys=True))
                return 0
            spec = _client_spec_payload(args)
            if args.client_command == "recommend":
                result = client.recommend(
                    spec=spec,
                    constraints=_parse_constraints(args.constraint) or None,
                    config={
                        "max_resolution": args.max_resolution,
                        "refine_top_k": args.top_k,
                    },
                )
                print(result["summary"])
                if (
                    args.metacore == "viterbi"
                    and result.get("point") is not None
                ):
                    print(f"instance: {describe_point(result['point'])}")
                return 0 if result.get("feasible") else 1
            if args.client_command == "eval":
                metrics = client.eval(
                    _client_point(args), fidelity=args.fidelity, spec=spec
                )
                for name in sorted(metrics):
                    print(f"  {name} = {metrics[name]:.6g}")
                return 0
            # search
            config = {
                "max_resolution": args.max_resolution,
                "refine_top_k": args.top_k,
                "strategy": args.strategy,
            }
            result = client.search(spec=spec, config=config)
            print(result["summary"])
            if result["best_point"] is not None:
                if args.metacore == "viterbi":
                    print(f"winner: {describe_point(result['best_point'])}")
                else:
                    print(f"winner: {result['best_point']}")
            if not result["feasible"]:
                print("specification NOT FEASIBLE within the design space")
                return 1
            return 0
    except (
        ServeConnectionError,
        ServeRequestError,
        ConfigurationError,
        OSError,
    ) as error:
        print(f"request failed: {error}", file=sys.stderr)
        return 1


def cmd_cluster(args: argparse.Namespace) -> int:
    """Run the cluster router over a static replica topology."""
    from repro.cluster import (
        RouterConfig,
        load_topology,
        route_forever,
        topology_from_flags,
    )

    try:
        if args.topology:
            topology = load_topology(args.topology)
        elif args.replica:
            topology = topology_from_flags(args.replica)
        else:
            raise ConfigurationError(
                "give --topology FILE or at least one --replica"
            )
    except ConfigurationError as error:
        print(f"invalid topology: {error}", file=sys.stderr)
        return 1

    config = RouterConfig(
        vnodes=args.vnodes,
        hedge_after_s=(
            args.hedge_ms / 1000.0 if args.hedge_ms > 0 else None
        ),
        max_attempts=args.max_attempts,
        probe_interval_s=args.probe_interval_ms / 1000.0,
        eject_after=args.eject_after,
    )

    def on_ready(server) -> None:
        print(
            f"routing on {server.address} across "
            f"{len(topology)} replicas",
            flush=True,
        )

    try:
        asyncio.run(
            route_forever(
                topology,
                config=config,
                host=args.host,
                port=args.port,
                unix_path=args.unix,
                ready_callback=on_ready,
            )
        )
    except KeyboardInterrupt:
        pass
    finally:
        print("router stopped")
    return 0


def cmd_atlas_compact(args: argparse.Namespace) -> int:
    """Rewrite an atlas file without its append-only history."""
    from repro.atlas import compact_atlas, format_compact_report

    try:
        report = compact_atlas(
            args.file, frontier_only=args.frontier_only
        )
    except ConfigurationError as error:
        print(f"cannot compact atlas: {error}", file=sys.stderr)
        return 1
    print(format_compact_report(report))
    return 0


def cmd_trace_report(args: argparse.Namespace) -> int:
    """Aggregate a JSONL trace file into a per-stage breakdown."""
    try:
        summary = summarize_trace(args.file)
    except OSError as error:
        print(f"cannot read trace file: {error}", file=sys.stderr)
        return 1
    print(format_trace_report(summary))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="metacores",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    ber = sub.add_parser("viterbi-ber", help="measure a decoder's BER curve")
    _add_viterbi_point_args(ber)
    ber.add_argument(
        "--snr", type=float, nargs="+", default=[0.0, 1.0, 2.0, 3.0, 4.0],
        help="Es/N0 points (dB)",
    )
    ber.add_argument("--bits", type=int, default=100_000)
    ber.add_argument("--errors", type=int, default=100)
    ber.add_argument("--seed", type=int, default=20010618)
    _add_kernel_arg(ber)
    ber.set_defaults(func=cmd_viterbi_ber)

    search = sub.add_parser(
        "viterbi-search", help="run the multiresolution Viterbi search"
    )
    search.add_argument("--ber", type=float, required=True, help="max BER")
    search.add_argument(
        "--es-n0-db", type=float, default=2.0, help="Es/N0 of the BER spec (dB)"
    )
    search.add_argument(
        "--throughput", type=float, required=True, help="bits per second"
    )
    search.add_argument("--feature-um", type=float, default=0.25)
    search.add_argument("--max-resolution", type=int, default=2)
    search.add_argument("--top-k", type=int, default=3)
    _add_strategy_arg(search)
    _add_power_args(search)
    _add_kernel_arg(search)
    _add_parallel_args(search)
    _add_checkpoint_args(search)
    _add_atlas_arg(search)
    _add_trace_arg(search)
    search.set_defaults(func=cmd_viterbi_search)

    spectrum = sub.add_parser(
        "spectrum", help="distance spectrum of a convolutional code"
    )
    spectrum.add_argument("--k", type=int, default=7)
    spectrum.set_defaults(func=cmd_spectrum)

    diagram = sub.add_parser(
        "diagram", help="draw an encoder (and optionally its trellis)"
    )
    diagram.add_argument("--k", type=int, default=3)
    diagram.add_argument("--trellis", action="store_true")
    diagram.set_defaults(func=cmd_diagram)

    noise = sub.add_parser(
        "iir-noise", help="round-off noise comparison across structures"
    )
    noise.add_argument("--family", choices=FILTER_FAMILIES, default="elliptic")
    noise.add_argument("--word", type=int, default=12)
    noise.set_defaults(func=cmd_iir_noise)

    iir = sub.add_parser("iir-search", help="run the IIR MetaCore search")
    iir.add_argument(
        "--period-us", type=float, required=True, help="sample period (us)"
    )
    iir.add_argument("--max-resolution", type=int, default=3)
    iir.add_argument("--top-k", type=int, default=4)
    _add_strategy_arg(iir)
    _add_power_args(iir)
    _add_parallel_args(iir)
    _add_checkpoint_args(iir)
    _add_atlas_arg(iir)
    _add_trace_arg(iir)
    iir.set_defaults(func=cmd_iir_search)

    design = sub.add_parser(
        "iir-design", help="design + realize + quantize one IIR candidate"
    )
    design.add_argument("--family", choices=FILTER_FAMILIES, default="elliptic")
    design.add_argument(
        "--structure", choices=available_structures(), default="cascade"
    )
    design.add_argument("--word", type=int, default=12)
    design.add_argument(
        "--allocation", type=float, default=0.85,
        help="fraction of the ripple budget the nominal design spends",
    )
    design.set_defaults(func=cmd_iir_design)

    table3 = sub.add_parser(
        "table3", help="reproduce the paper's Table 3 (Viterbi sweep)"
    )
    table3.add_argument("--es-n0-db", type=float, default=2.0)
    table3.add_argument("--max-resolution", type=int, default=2)
    table3.add_argument("--top-k", type=int, default=3)
    _add_strategy_arg(table3)
    _add_kernel_arg(table3)
    _add_parallel_args(table3)
    _add_trace_arg(table3)
    table3.set_defaults(func=cmd_table3)

    table4 = sub.add_parser(
        "table4", help="reproduce the paper's Table 4 (IIR sweep)"
    )
    table4.add_argument("--max-resolution", type=int, default=3)
    table4.add_argument("--top-k", type=int, default=4)
    _add_strategy_arg(table4)
    # Accepted for sweep-script symmetry with table3; the IIR machinery
    # has no decode kernels, so the flag is inert here.
    _add_kernel_arg(table4)
    _add_parallel_args(table4)
    _add_trace_arg(table4)
    table4.set_defaults(func=cmd_table4)

    inject = sub.add_parser(
        "inject-campaign",
        help="fault-injection campaign over one decoder instance",
    )
    _add_viterbi_point_args(inject)
    inject.add_argument(
        "--model", choices=FAULT_MODELS, default="seu",
        help="fault model: transient bit-flips (seu) or stuck-at bits",
    )
    inject.add_argument(
        "--rates", type=float, nargs="+", default=[1e-4, 1e-3],
        metavar="RATE",
        help="fault intensities to sweep (fault-free reference is "
        "measured automatically)",
    )
    inject.add_argument(
        "--targets", choices=_VITERBI_TARGETS, nargs="+",
        default=list(_VITERBI_TARGETS),
        help="storage classes to inject, one class per campaign cell",
    )
    inject.add_argument(
        "--snr", type=float, nargs="+", default=[0.0, 2.0],
        help="Es/N0 points of the degradation curves (dB)",
    )
    inject.add_argument(
        "--bits", type=int, default=24_000,
        help="data bits decoded per campaign cell",
    )
    inject.add_argument("--word-bits", type=int, default=16)
    inject.add_argument("--frac-bits", type=int, default=8)
    inject.add_argument("--seed", type=int, default=20010618)
    inject.add_argument(
        "--out", metavar="FILE", default=None,
        help="also save the full campaign result as JSON "
        "(re-render with `metacores campaign-report FILE`)",
    )
    _add_parallel_args(inject)
    _add_trace_arg(inject)
    inject.set_defaults(func=cmd_inject_campaign)

    campaign_report = sub.add_parser(
        "campaign-report",
        help="re-render a saved inject-campaign --out file",
    )
    campaign_report.add_argument(
        "file", help="campaign JSON written by inject-campaign --out"
    )
    campaign_report.set_defaults(func=cmd_campaign_report)

    def _add_facade_spec_args(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "--metacore", choices=("viterbi", "iir"), required=True
        )
        sub_parser.add_argument(
            "--ber", type=float, default=None, help="max BER (viterbi)"
        )
        sub_parser.add_argument(
            "--es-n0-db", type=float, default=2.0,
            help="Es/N0 of the BER spec (dB)",
        )
        sub_parser.add_argument(
            "--throughput", type=float, default=None,
            help="bits per second (viterbi)",
        )
        sub_parser.add_argument("--feature-um", type=float, default=0.25)
        sub_parser.add_argument(
            "--period-us", type=float, default=None,
            help="sample period in us (iir)",
        )
        sub_parser.add_argument("--max-resolution", type=int, default=2)
        sub_parser.add_argument("--top-k", type=int, default=3)
        _add_strategy_arg(sub_parser)
        _add_power_args(sub_parser)

    recommend = sub.add_parser(
        "recommend",
        help="answer a constraint query from the design atlas "
        "(zero evaluations on a library hit)",
    )
    _add_facade_spec_args(recommend)
    recommend.add_argument(
        "--constraint", action="append", metavar="NAME=VALUE", default=None,
        help="extra upper bound on a metric (repeatable), "
        "e.g. --constraint area_mm2=40",
    )
    recommend.add_argument(
        "--atlas", metavar="FILE", required=True,
        help="design atlas to query (and grow on a miss)",
    )
    _add_parallel_args(recommend)
    _add_trace_arg(recommend)
    recommend.set_defaults(func=cmd_recommend)

    sweep = sub.add_parser(
        "sweep",
        help="search a portfolio of specifications into one atlas",
    )
    sweep.add_argument(
        "--metacore", choices=("viterbi", "iir"), required=True
    )
    sweep.add_argument(
        "--specs", nargs="+", metavar="BER:THROUGHPUT", default=None,
        help="viterbi scenario list, e.g. --specs 1e-2:1e6 1e-4:2e6",
    )
    sweep.add_argument(
        "--periods", type=float, nargs="+", metavar="US", default=None,
        help="iir sample-period list (us), e.g. --periods 1.0 2.0",
    )
    sweep.add_argument(
        "--es-n0-db", type=float, default=2.0,
        help="Es/N0 of the viterbi BER specs (dB)",
    )
    sweep.add_argument("--feature-um", type=float, default=0.25)
    sweep.add_argument("--max-resolution", type=int, default=2)
    sweep.add_argument("--top-k", type=int, default=3)
    _add_strategy_arg(sweep)
    _add_power_args(sweep)
    sweep.add_argument(
        "--atlas", metavar="FILE", required=True,
        help="design atlas the sweep populates",
    )
    _add_parallel_args(sweep)
    _add_trace_arg(sweep)
    sweep.set_defaults(func=cmd_sweep)

    atlas_report = sub.add_parser(
        "atlas-report",
        help="summarize a design-atlas file (scenarios and frontiers)",
    )
    atlas_report.add_argument("file", help="atlas JSONL written by --atlas")
    atlas_report.set_defaults(func=cmd_atlas_report)

    atlas_compact = sub.add_parser(
        "atlas-compact",
        help="rewrite an atlas file keeping only deduped surviving "
        "records (optionally frontier designs only)",
    )
    atlas_compact.add_argument(
        "file", help="atlas JSONL written by --atlas"
    )
    atlas_compact.add_argument(
        "--frontier-only", action="store_true",
        help="drop replay history; keep each scenario's Pareto "
        "frontier only",
    )
    atlas_compact.set_defaults(func=cmd_atlas_compact)

    trace_report = sub.add_parser(
        "trace-report",
        help="aggregate a --trace JSONL file into per-stage totals",
    )
    trace_report.add_argument("file", help="trace file written by --trace")
    trace_report.set_defaults(func=cmd_trace_report)

    serve = sub.add_parser(
        "serve",
        help="run the async batched evaluation service",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 = pick a free one; printed on startup)",
    )
    serve.add_argument(
        "--unix", metavar="PATH", default=None,
        help="serve on a unix socket instead of TCP",
    )
    serve.add_argument(
        "--max-batch", type=int, default=8,
        help="largest micro-batch fed to the evaluator at once",
    )
    serve.add_argument(
        "--linger-ms", type=float, default=2.0,
        help="how long a batch waits for co-travellers before running",
    )
    serve.add_argument(
        "--max-pending", type=int, default=256,
        help="admission-control window; excess requests are rejected "
        "with an `overloaded` error",
    )
    serve.add_argument(
        "--timeout-s", type=float, default=60.0,
        help="default per-request timeout",
    )
    serve.add_argument(
        "--resilient", action="store_true",
        help="retry and quarantine failing evaluations per session",
    )
    serve.add_argument(
        "--node-id", default=None,
        help="stable replica identity shown in cluster status tables",
    )
    _add_parallel_args(serve)
    _add_atlas_arg(serve)
    serve.set_defaults(func=cmd_serve)

    cluster = sub.add_parser(
        "cluster",
        help="run the fingerprint-sharded router over serve replicas",
    )
    cluster.add_argument("--host", default="127.0.0.1")
    cluster.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 = pick a free one; printed on startup)",
    )
    cluster.add_argument(
        "--unix", metavar="PATH", default=None,
        help="route on a unix socket instead of TCP",
    )
    cluster.add_argument(
        "--topology", metavar="FILE", default=None,
        help='JSON topology file with a "replicas" list',
    )
    cluster.add_argument(
        "--replica", action="append", metavar="HOST:PORT|unix:PATH",
        default=None,
        help="replica address (repeatable; alternative to --topology)",
    )
    cluster.add_argument(
        "--hedge-ms", type=float, default=500.0,
        help="duplicate a straggling request to the next replica "
        "after this long (0 disables hedging)",
    )
    cluster.add_argument(
        "--max-attempts", type=int, default=3,
        help="failover attempts per request across replicas",
    )
    cluster.add_argument(
        "--probe-interval-ms", type=float, default=500.0,
        help="how often each replica's status is probed",
    )
    cluster.add_argument(
        "--eject-after", type=int, default=3,
        help="consecutive failures before a replica is ejected "
        "from routing (it rejoins on the next good probe)",
    )
    cluster.add_argument(
        "--vnodes", type=int, default=64,
        help="virtual nodes per replica on the hash ring",
    )
    cluster.set_defaults(func=cmd_cluster)

    client = sub.add_parser(
        "client",
        help="send requests to a running evaluation service",
    )
    client_sub = client.add_subparsers(dest="client_command", required=True)

    def _add_connection_args(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument("--host", default="127.0.0.1")
        sub_parser.add_argument("--port", type=int, default=None)
        sub_parser.add_argument("--unix", metavar="PATH", default=None)
        sub_parser.add_argument(
            "--router", metavar="HOST:PORT|unix:PATH", default=None,
            help="address of a cluster router (overrides "
            "--host/--port/--unix); requests shard across its replicas",
        )

    def _add_spec_args(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "--metacore", choices=("viterbi", "iir"), required=True
        )
        sub_parser.add_argument(
            "--ber", type=float, default=None, help="max BER (viterbi)"
        )
        sub_parser.add_argument(
            "--es-n0-db", type=float, default=2.0,
            help="Es/N0 of the BER spec (dB)",
        )
        sub_parser.add_argument(
            "--throughput", type=float, default=None,
            help="bits per second (viterbi)",
        )
        sub_parser.add_argument("--feature-um", type=float, default=0.25)
        sub_parser.add_argument("--seed", type=int, default=20010618)
        sub_parser.add_argument(
            "--period-us", type=float, default=None,
            help="sample period in us (iir)",
        )
        _add_power_args(sub_parser)

    client_eval = client_sub.add_parser(
        "eval", help="price one design point on the server"
    )
    _add_connection_args(client_eval)
    _add_spec_args(client_eval)
    _add_viterbi_point_args(client_eval)
    client_eval.add_argument(
        "--structure", choices=available_structures(), default="cascade",
        help="realization structure (iir point)",
    )
    client_eval.add_argument(
        "--family", choices=FILTER_FAMILIES, default="elliptic",
        help="approximation family (iir point)",
    )
    client_eval.add_argument(
        "--word", type=int, default=12,
        help="coefficient word length (iir point)",
    )
    client_eval.add_argument(
        "--allocation", type=float, default=0.85,
        help="ripple allocation (iir point)",
    )
    client_eval.add_argument("--fidelity", type=int, default=0)
    client_eval.set_defaults(func=cmd_client)

    client_search = client_sub.add_parser(
        "search", help="run a full search on the server"
    )
    _add_connection_args(client_search)
    _add_spec_args(client_search)
    client_search.add_argument("--max-resolution", type=int, default=2)
    client_search.add_argument("--top-k", type=int, default=3)
    _add_strategy_arg(client_search)
    client_search.set_defaults(func=cmd_client)

    client_recommend = client_sub.add_parser(
        "recommend",
        help="query the server's design atlas for a satisfying design",
    )
    _add_connection_args(client_recommend)
    _add_spec_args(client_recommend)
    client_recommend.add_argument(
        "--constraint", action="append", metavar="NAME=VALUE", default=None,
        help="extra upper bound on a metric (repeatable)",
    )
    client_recommend.add_argument("--max-resolution", type=int, default=2)
    client_recommend.add_argument("--top-k", type=int, default=3)
    client_recommend.set_defaults(func=cmd_client)

    client_status = client_sub.add_parser(
        "status", help="print the server's status snapshot"
    )
    _add_connection_args(client_status)
    client_status.set_defaults(func=cmd_client)

    client_drain = client_sub.add_parser(
        "drain",
        help="stop the server (or every replica, via a router) from "
        "admitting new work while in-flight work finishes",
    )
    _add_connection_args(client_drain)
    client_drain.set_defaults(func=cmd_client)

    client_shutdown = client_sub.add_parser(
        "shutdown", help="ask the server to exit cleanly"
    )
    _add_connection_args(client_shutdown)
    client_shutdown.set_defaults(func=cmd_client)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    finally:
        # Worker pools must not outlive the command (satellite of the
        # resilience work: no orphaned processes on any exit path).
        shutdown_all_pools()


if __name__ == "__main__":
    sys.exit(main())
