"""Consistent hashing of evaluator fingerprints onto replicas.

The router shards *sessions*, not individual requests: every request
whose spec hashes to the same evaluator fingerprint lands on the same
replica, so that replica's evaluator session, caches, and micro-batches
stay warm for it.  A classic consistent-hash ring with virtual nodes
gives that stickiness while keeping reshuffling minimal when a replica
joins or leaves: each replica owns ``vnodes`` pseudo-random points on a
md5 ring, and a key routes to the first replica point at or after the
key's own hash.

:meth:`HashRing.preference` returns the *whole* preference list — every
replica, deduplicated, in ring order from the key's position.  The
router walks that list for failover and takes entry #2 as the hedging
target, so a key's backup replicas are as stable as its primary.

md5 is used as a spreading function only (no security meaning) and is
stable across processes and Python versions, unlike ``hash()`` — the
same key must route identically from every router instance.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import List, Sequence

DEFAULT_VNODES = 64


def _hash(value: str) -> int:
    digest = hashlib.md5(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Virtual-node consistent-hash ring over replica names."""

    def __init__(self, names: Sequence[str], vnodes: int = DEFAULT_VNODES):
        if not names:
            raise ValueError("hash ring needs at least one replica name")
        if len(set(names)) != len(names):
            raise ValueError("hash ring replica names must be unique")
        self.vnodes = max(1, int(vnodes))
        self._names = list(names)
        points = []
        for name in self._names:
            for vnode in range(self.vnodes):
                points.append((_hash(f"{name}#{vnode}"), name))
        points.sort()
        self._points = [point for point, _name in points]
        self._owners = [name for _point, name in points]

    def __len__(self) -> int:
        return len(self._names)

    @property
    def names(self) -> List[str]:
        return list(self._names)

    def owner(self, key: str) -> str:
        """The primary replica for a routing key."""
        return self.preference(key)[0]

    def preference(self, key: str) -> List[str]:
        """All replicas in ring order from the key's position.

        Entry 0 is the primary, entry 1 the first failover / hedging
        target, and so on; every replica appears exactly once.
        """
        start = bisect.bisect_left(self._points, _hash(key))
        seen = set()
        ordered = []
        n = len(self._points)
        for step in range(n):
            name = self._owners[(start + step) % n]
            if name not in seen:
                seen.add(name)
                ordered.append(name)
                if len(ordered) == len(self._names):
                    break
        return ordered
