"""Async client connection from the router to one replica.

One :class:`ReplicaConnection` multiplexes every router request bound
for a replica onto a single pipelined socket: requests are re-stamped
with connection-local ids, a background reader task correlates the
out-of-order responses back to their futures, and a transport failure
fails *all* in-flight futures with :class:`ReplicaUnavailableError` —
the router's signal to fail the affected requests over to the next
replica on the ring.

The connection is lazy and self-healing: the first request after a
drop reconnects.  Health accounting (degraded/ejected states) lives in
:mod:`repro.cluster.health`; this module only reports failures.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Dict, Optional

from repro.cluster.topology import Replica
from repro.serve.protocol import (
    ProtocolError,
    decode_message,
    encode_message,
)


class ReplicaUnavailableError(ConnectionError):
    """The replica's transport failed (connect, send, or receive)."""

    def __init__(self, replica: str, reason: str) -> None:
        super().__init__(f"replica {replica!r} unavailable: {reason}")
        self.replica = replica


class ReplicaConnection:
    """Pipelined newline-JSON connection to one replica."""

    def __init__(
        self, replica: Replica, connect_timeout_s: float = 5.0
    ) -> None:
        self.replica = replica
        self.connect_timeout_s = connect_timeout_s
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional["asyncio.Task[None]"] = None
        self._pending: Dict[int, "asyncio.Future[Dict[str, Any]]"] = {}
        self._ids = itertools.count(1)
        self._connect_lock = asyncio.Lock()
        self._closed = False

    @property
    def connected(self) -> bool:
        return self._writer is not None

    async def _ensure_connected(self) -> None:
        async with self._connect_lock:
            if self._writer is not None or self._closed:
                return
            try:
                if self.replica.unix_path:
                    opening = asyncio.open_unix_connection(
                        self.replica.unix_path
                    )
                else:
                    opening = asyncio.open_connection(
                        self.replica.host, self.replica.port
                    )
                reader, writer = await asyncio.wait_for(
                    opening, timeout=self.connect_timeout_s
                )
            except (OSError, asyncio.TimeoutError) as exc:
                raise ReplicaUnavailableError(
                    self.replica.name, f"connect failed: {exc}"
                ) from exc
            self._reader = reader
            self._writer = writer
            self._reader_task = asyncio.ensure_future(self._read_loop())

    async def _read_loop(self) -> None:
        reader = self._reader
        reason = "connection closed by replica"
        try:
            while reader is not None:
                line = await reader.readline()
                if not line:
                    break
                try:
                    message = decode_message(line)
                except ProtocolError:
                    reason = "replica sent an undecodable message"
                    break
                future = self._pending.pop(message.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(message)
        except (ConnectionError, OSError, asyncio.LimitOverrunError) as exc:
            reason = str(exc)
        except asyncio.CancelledError:
            reason = "connection closed"
        finally:
            self._drop(reason)

    def _drop(self, reason: str) -> None:
        """Tear down transport state and fail every in-flight request."""
        writer, self._writer = self._writer, None
        self._reader = None
        self._reader_task = None
        if writer is not None:
            try:
                writer.close()
            except Exception:
                pass
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(
                    ReplicaUnavailableError(self.replica.name, reason)
                )

    async def request(
        self, op: str, fields: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """Send one request; returns the full response envelope.

        Raises :class:`ReplicaUnavailableError` on any transport
        failure.  Protocol-level errors (``ok: false``) are returned to
        the caller untouched — the router decides which error codes
        mean "fail over" and which are the client's own answer.
        """
        await self._ensure_connected()
        writer = self._writer
        if writer is None:
            raise ReplicaUnavailableError(
                self.replica.name, "connection lost before send"
            )
        request_id = next(self._ids)
        message: Dict[str, Any] = {"id": request_id, "op": op}
        if fields:
            message.update(
                {k: v for k, v in fields.items() if v is not None}
            )
        loop = asyncio.get_event_loop()
        future: "asyncio.Future[Dict[str, Any]]" = loop.create_future()
        self._pending[request_id] = future
        try:
            writer.write(encode_message(message))
            await writer.drain()
        except (ConnectionError, OSError) as exc:
            self._pending.pop(request_id, None)
            self._drop(str(exc))
            raise ReplicaUnavailableError(
                self.replica.name, f"send failed: {exc}"
            ) from exc
        try:
            return await future
        finally:
            self._pending.pop(request_id, None)

    async def close(self) -> None:
        self._closed = True
        task = self._reader_task
        self._drop("connection closed")
        if task is not None:
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
