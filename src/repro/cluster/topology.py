"""Static cluster topology: which replicas exist and where they live.

A topology is the router's world view — a named set of serve replicas
(the ordinary ``metacores serve`` processes), each reachable over TCP
(``host:port``) or a unix socket.  It comes from a JSON topology file::

    {
      "replicas": [
        {"name": "r0", "host": "127.0.0.1", "port": 7777},
        {"name": "r1", "unix": "/var/run/metacores-r1.sock"}
      ]
    }

or from repeated ``--replica`` CLI flags (``HOST:PORT`` or
``unix:PATH``, auto-named ``replica-0..n`` in flag order).  Loading is
strict: a corrupt or partial file is rejected with a
:class:`~repro.errors.ConfigurationError` naming exactly what is wrong
— a router must never start against a half-described cluster.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, List, Mapping, Optional, Sequence, Union

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Replica:
    """One serve process a router can route to."""

    name: str
    host: Optional[str] = None
    port: Optional[int] = None
    unix_path: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("replica needs a non-empty name")
        if self.unix_path:
            if self.host is not None or self.port is not None:
                raise ConfigurationError(
                    f"replica {self.name!r}: give host/port or unix, not both"
                )
        else:
            if not self.host or self.port is None:
                raise ConfigurationError(
                    f"replica {self.name!r} needs host and port (or unix)"
                )
            if not 0 < int(self.port) < 65536:
                raise ConfigurationError(
                    f"replica {self.name!r}: port {self.port} out of range"
                )

    @property
    def address(self) -> str:
        """Human-readable endpoint (for logs and status tables)."""
        if self.unix_path:
            return str(self.unix_path)
        return f"{self.host}:{self.port}"


@dataclass(frozen=True)
class Topology:
    """An ordered, uniquely named replica set."""

    replicas: tuple

    def __post_init__(self) -> None:
        if not self.replicas:
            raise ConfigurationError("topology needs at least one replica")
        names = [replica.name for replica in self.replicas]
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            raise ConfigurationError(
                f"duplicate replica names in topology: {duplicates}"
            )

    def __len__(self) -> int:
        return len(self.replicas)

    def names(self) -> List[str]:
        return [replica.name for replica in self.replicas]


def _replica_from_entry(index: int, entry: Any) -> Replica:
    if not isinstance(entry, Mapping):
        raise ConfigurationError(
            f"topology replica #{index} is not an object"
        )
    unknown = sorted(set(entry) - {"name", "host", "port", "unix"})
    if unknown:
        raise ConfigurationError(
            f"topology replica #{index} has unknown keys: {unknown}"
        )
    name = entry.get("name")
    if not isinstance(name, str) or not name:
        raise ConfigurationError(
            f"topology replica #{index} needs a non-empty string name"
        )
    unix_path = entry.get("unix")
    if unix_path is not None and not isinstance(unix_path, str):
        raise ConfigurationError(
            f"topology replica {name!r}: unix must be a string path"
        )
    port = entry.get("port")
    if port is not None:
        if isinstance(port, bool) or not isinstance(port, int):
            raise ConfigurationError(
                f"topology replica {name!r}: port must be an integer"
            )
    host = entry.get("host")
    if host is not None and not isinstance(host, str):
        raise ConfigurationError(
            f"topology replica {name!r}: host must be a string"
        )
    return Replica(name=name, host=host, port=port, unix_path=unix_path)


def load_topology(path: Union[str, Path]) -> Topology:
    """Parse and validate a JSON topology file (strict)."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read topology file {path}: {exc}"
        ) from exc
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"topology file {path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(document, dict):
        raise ConfigurationError(
            f"topology file {path} must be a JSON object "
            'with a "replicas" list'
        )
    replicas = document.get("replicas")
    if not isinstance(replicas, list) or not replicas:
        raise ConfigurationError(
            f'topology file {path} needs a non-empty "replicas" list'
        )
    return Topology(
        replicas=tuple(
            _replica_from_entry(index, entry)
            for index, entry in enumerate(replicas)
        )
    )


def topology_from_flags(flags: Sequence[str]) -> Topology:
    """``--replica`` flag values (``HOST:PORT`` / ``unix:PATH``)."""
    replicas = []
    for index, flag in enumerate(flags):
        name = f"replica-{index}"
        if flag.startswith("unix:"):
            replicas.append(Replica(name=name, unix_path=flag[len("unix:"):]))
            continue
        host, sep, port_s = flag.rpartition(":")
        if not sep or not host:
            raise ConfigurationError(
                f"--replica {flag!r} is not HOST:PORT or unix:PATH"
            )
        try:
            port = int(port_s)
        except ValueError:
            raise ConfigurationError(
                f"--replica {flag!r} has a non-numeric port"
            ) from None
        replicas.append(Replica(name=name, host=host, port=port))
    return Topology(replicas=tuple(replicas))
