"""Multi-node cluster serving: sharded routing over serve replicas.

The :mod:`repro.serve` layer made the cost-evaluation engine a single
long-running service; this package scales it *out*.  A thin async
router speaks the same newline-JSON protocol to clients and shards
traffic across several ordinary serve processes ("replicas") by
consistent hashing on the evaluator fingerprint, so every spec's
session, caches, and micro-batches stay warm on one replica while the
cluster as a whole serves many specs concurrently.  See
``docs/cluster.md``.

- :mod:`repro.cluster.topology` — replica set description: strict
  JSON topology files and ``--replica`` flag parsing;
- :mod:`repro.cluster.ring` — md5 consistent-hash ring with virtual
  nodes; preference lists drive failover and hedging order;
- :mod:`repro.cluster.connection` — pipelined async client connection
  to one replica with id remapping and fail-fast on disconnect;
- :mod:`repro.cluster.health` — replica health state machine
  (healthy/degraded/ejected, rejoin on recovery) + the probe loop;
- :mod:`repro.cluster.router` — the router itself: key routing,
  request hedging, bounded failover retry, cluster status/drain;
- :mod:`repro.cluster.handle` — blocking-world handles, including the
  whole-cluster-in-one-process ``ClusterHandle`` behind the facades'
  ``serve(replicas=N)``.

Determinism: replicas share no mutable evaluation state, so any search
routed through a cluster is byte-identical to the same search on a
single facade — the property every test in ``tests/test_cluster.py``
pivots on.
"""

from repro.cluster.connection import (
    ReplicaConnection,
    ReplicaUnavailableError,
)
from repro.cluster.handle import ClusterHandle, RouterHandle
from repro.cluster.health import (
    STATE_DEGRADED,
    STATE_EJECTED,
    STATE_HEALTHY,
    HealthMonitor,
    RouterReplica,
)
from repro.cluster.ring import DEFAULT_VNODES, HashRing
from repro.cluster.router import (
    FAILOVER_CODES,
    ClusterRouter,
    RouterConfig,
    RouterServer,
    route_forever,
)
from repro.cluster.topology import (
    Replica,
    Topology,
    load_topology,
    topology_from_flags,
)

__all__ = [
    "ReplicaConnection",
    "ReplicaUnavailableError",
    "ClusterHandle",
    "RouterHandle",
    "STATE_DEGRADED",
    "STATE_EJECTED",
    "STATE_HEALTHY",
    "HealthMonitor",
    "RouterReplica",
    "DEFAULT_VNODES",
    "HashRing",
    "FAILOVER_CODES",
    "ClusterRouter",
    "RouterConfig",
    "RouterServer",
    "route_forever",
    "Replica",
    "Topology",
    "load_topology",
    "topology_from_flags",
]
