"""Blocking-world handles: a router thread, and a whole-cluster-in-one.

:class:`RouterHandle` mirrors :class:`~repro.serve.server.ServeHandle`
for the router: event loop + :class:`ClusterRouter` + socket server on
a daemon thread, ``start()`` returning once the socket is bound.

:class:`ClusterHandle` is what the MetaCore facades' ``serve(replicas=N)``
returns: it owns N in-process replica ``ServeHandle``s plus one router
wired to them, presents the same surface as a single ``ServeHandle``
(``client()``, ``stop()``, context manager), and registers the facade's
spec session on *every* replica so session-addressed requests can land
anywhere the ring sends them.  Replicas share the design atlas (the
store is multi-writer safe) but get private persistent-cache files —
caching never changes results, so the split is invisible to clients.
"""

from __future__ import annotations

import asyncio
import dataclasses
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.router import (
    ClusterRouter,
    RouterConfig,
    RouterServer,
    route_forever,
)
from repro.cluster.topology import Replica, Topology
from repro.serve.protocol import spec_to_payload
from repro.serve.server import ServeHandle
from repro.serve.service import ServiceConfig


class RouterHandle:
    """Router + socket server on a background thread."""

    def __init__(
        self,
        topology: Topology,
        config: Optional[RouterConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_path: Optional[str] = None,
    ) -> None:
        self.topology = topology
        self.config = config or RouterConfig()
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.router: Optional[ClusterRouter] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[RouterServer] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self) -> "RouterHandle":
        if self._thread is not None:
            raise RuntimeError("handle already started")
        self._thread = threading.Thread(
            target=self._run, name="metacores-router", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop

        def on_ready(server: RouterServer) -> None:
            self._server = server
            self.router = server.router
            self.port = server.port
            self._ready.set()

        try:
            loop.run_until_complete(
                route_forever(
                    self.topology,
                    config=self.config,
                    host=self.host,
                    port=self.port,
                    unix_path=self.unix_path,
                    ready_callback=on_ready,
                )
            )
        except BaseException as exc:  # surface bind errors to start()
            if not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()
        finally:
            loop.close()

    def stop(self) -> None:
        """Request shutdown and join the router thread (idempotent)."""
        thread, self._thread = self._thread, None
        if thread is None:
            return
        loop, server = self._loop, self._server
        if loop is not None and server is not None and loop.is_running():
            loop.call_soon_threadsafe(server.shutdown_requested.set)
        thread.join(timeout=30.0)

    def __enter__(self) -> "RouterHandle":
        if self._thread is None:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def client(self, timeout_s: float = 120.0):
        """A connected synchronous client for the router."""
        from repro.serve.client import ServeClient

        return ServeClient(
            host=self.host,
            port=self.port,
            unix_path=self.unix_path,
            timeout_s=timeout_s,
        )

    def submit_async(self, coroutine):
        """Schedule a router coroutine; returns a concurrent future."""
        assert self._loop is not None, "handle not started"
        return asyncio.run_coroutine_threadsafe(coroutine, self._loop)

    def submit(self, coroutine) -> Any:
        return self.submit_async(coroutine).result()


def _replica_config(base: ServiceConfig, name: str) -> ServiceConfig:
    """Per-replica service config: own node id, private cache file."""
    cache_path = base.cache_path
    if cache_path:
        cache_path = f"{cache_path}.{name}"
    return dataclasses.replace(base, node_id=name, cache_path=cache_path)


class ClusterHandle:
    """N in-process replicas + a router, behind one handle.

    The facade surface matches :class:`ServeHandle` where it matters
    (``client()``, ``stop()``, ``port``, context manager), so call
    sites can treat ``serve()`` and ``serve(replicas=3)`` uniformly.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        replicas: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        router_config: Optional[RouterConfig] = None,
    ) -> None:
        if replicas < 1:
            raise ValueError("a cluster needs at least one replica")
        base = config or ServiceConfig()
        self.host = host
        self.port = port
        self.router_config = router_config
        self.replica_handles: List[ServeHandle] = [
            ServeHandle(_replica_config(base, f"replica-{index}"), host=host)
            for index in range(replicas)
        ]
        self.router_handle: Optional[RouterHandle] = None
        self._started = False

    # -- life cycle ------------------------------------------------------

    def start(self) -> "ClusterHandle":
        if self._started:
            raise RuntimeError("handle already started")
        started: List[ServeHandle] = []
        try:
            for handle in self.replica_handles:
                handle.start()
                started.append(handle)
            topology = Topology(
                replicas=tuple(
                    Replica(
                        name=f"replica-{index}",
                        host=handle.host,
                        port=handle.port,
                    )
                    for index, handle in enumerate(self.replica_handles)
                )
            )
            self.router_handle = RouterHandle(
                topology,
                config=self.router_config,
                host=self.host,
                port=self.port,
            ).start()
            self.port = self.router_handle.port
        except BaseException:
            for handle in started:
                handle.stop()
            raise
        self._started = True
        return self

    def stop(self) -> None:
        """Stop the router, then every replica (idempotent)."""
        self._started = False
        router, self.router_handle = self.router_handle, None
        if router is not None:
            router.stop()
        for handle in self.replica_handles:
            handle.stop()

    def __enter__(self) -> "ClusterHandle":
        if not self._started:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- conveniences ----------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    @property
    def router(self) -> Optional[ClusterRouter]:
        return self.router_handle.router if self.router_handle else None

    def client(self, timeout_s: float = 120.0):
        """A connected synchronous client for the cluster router."""
        assert self.router_handle is not None, "handle not started"
        return self.router_handle.client(timeout_s=timeout_s)

    def session_for_spec(self, payload: Dict[str, Any]) -> str:
        """Register a spec session on every replica; returns its name.

        Session names are evaluator fingerprints, so every replica
        derives the same name; registering everywhere lets clients
        address the session by name no matter where the ring routes.
        """
        name = None
        for handle in self.replica_handles:
            session = handle.service.session_for_spec(payload)
            name = session.name
        assert name is not None
        return name

    def register_spec(self, spec: object) -> str:
        """Register a facade specification cluster-wide (by object)."""
        return self.session_for_spec(spec_to_payload(spec))
