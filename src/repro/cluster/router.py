"""The cluster router: fingerprint-sharded front door for N replicas.

The router speaks the exact client protocol of
:mod:`repro.serve.protocol` — a client cannot tell a router from a
single server — and forwards each ``eval``/``search``/``recommend``
to a replica chosen by consistent hashing on the request's routing
key.  The key is the evaluator fingerprint: the ``session`` name when
the request carries one (session names *are* fingerprints, see
``EvaluationService.session_for_spec``), else the fingerprint computed
from the spec payload.  Same spec → same key from any router → same
replica, so each replica keeps warm evaluator sessions, caches, and
micro-batches for its shard of the fingerprint space.

Reliability mechanics on the request path:

- **Failover** — a transport failure or a replica answering with a
  *failover code* (``overloaded``, ``draining``, ``closed``) moves the
  request to the next replica on the key's preference list, with
  capped exponential backoff between attempts, up to
  ``max_attempts`` tries.  Any other error is the request's own
  answer (e.g. ``bad_request``) and is forwarded verbatim.
- **Hedging** — if the first replica has not answered within
  ``hedge_after_s``, the request is duplicated to the next replica on
  the preference list; the first usable answer wins and the loser is
  cancelled (its late response is discarded by the connection layer).
  All routed operations are deterministic, so a duplicate execution
  cannot change any result — only the tail latency.
- **Health** — a :class:`~repro.cluster.health.HealthMonitor` probes
  every replica's ``status``; ejected replicas are skipped by routing
  until a probe readmits them.  The hash ring itself never changes,
  so recovery restores the original shard map.

Determinism note: replicas share nothing and derive all stochastic
streams from (seed, point, fidelity), so a search answered through the
router — under failover, hedging, or both — is byte-identical to the
same search on a single facade.  The differential tests in
``tests/test_cluster.py`` enforce this.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.connection import ReplicaUnavailableError
from repro.cluster.health import (
    STATE_EJECTED,
    HealthMonitor,
    RouterReplica,
)
from repro.cluster.ring import DEFAULT_VNODES, HashRing
from repro.cluster.topology import Topology
from repro.errors import ConfigurationError
from repro.observability.metrics import MetricsRegistry, get_registry
from repro.observability.trace import get_tracer
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    error_response,
    ok_response,
)
from repro.serve.server import ServeServer
from repro.serve.service import fingerprint_for_payload

#: Replica error codes that mean "try another replica", not "the
#: request itself failed".  Everything else is forwarded to the client.
FAILOVER_CODES = frozenset({"overloaded", "draining", "closed"})

#: Operations that are routed by key (everything else the router
#: answers itself or fans out).
ROUTED_OPS = frozenset({"eval", "search", "recommend"})


class RouterConfig:
    """Tunables for routing, hedging, failover, and health probing."""

    def __init__(
        self,
        vnodes: int = DEFAULT_VNODES,
        hedge_after_s: Optional[float] = 0.5,
        max_attempts: int = 3,
        retry_backoff_s: float = 0.05,
        retry_backoff_max_s: float = 1.0,
        probe_interval_s: float = 0.5,
        probe_timeout_s: float = 5.0,
        eject_after: int = 3,
        connect_timeout_s: float = 5.0,
    ) -> None:
        self.vnodes = int(vnodes)
        #: ``None`` (or <= 0) disables hedging entirely.
        self.hedge_after_s = (
            None
            if hedge_after_s is None or hedge_after_s <= 0
            else float(hedge_after_s)
        )
        self.max_attempts = max(1, int(max_attempts))
        self.retry_backoff_s = max(0.0, float(retry_backoff_s))
        self.retry_backoff_max_s = max(
            self.retry_backoff_s, float(retry_backoff_max_s)
        )
        self.probe_interval_s = float(probe_interval_s)
        self.probe_timeout_s = float(probe_timeout_s)
        self.eject_after = max(1, int(eject_after))
        self.connect_timeout_s = float(connect_timeout_s)


class ClusterRouter:
    """Routes protocol requests across a replica set (asyncio-side)."""

    def __init__(
        self, topology: Topology, config: Optional[RouterConfig] = None
    ) -> None:
        self.topology = topology
        self.config = config or RouterConfig()
        self.replicas: Dict[str, RouterReplica] = {
            replica.name: RouterReplica(
                replica, connect_timeout_s=self.config.connect_timeout_s
            )
            for replica in topology.replicas
        }
        self.ring = HashRing(topology.names(), vnodes=self.config.vnodes)
        self.monitor = HealthMonitor(
            list(self.replicas.values()),
            probe_interval_s=self.config.probe_interval_s,
            probe_timeout_s=self.config.probe_timeout_s,
            eject_after=self.config.eject_after,
        )
        self.metrics = MetricsRegistry()
        self._fingerprints: Dict[str, str] = {}
        self._fingerprint_lock = threading.Lock()

    # -- life cycle ------------------------------------------------------

    async def start(self) -> None:
        """Probe every replica once (live initial state), start probes."""
        await asyncio.gather(
            *(
                self.monitor.probe(replica)
                for replica in self.replicas.values()
            ),
            return_exceptions=True,
        )
        self.monitor.start()

    async def stop(self) -> None:
        await self.monitor.stop()
        await asyncio.gather(
            *(
                replica.connection.close()
                for replica in self.replicas.values()
            ),
            return_exceptions=True,
        )

    # -- bookkeeping -----------------------------------------------------

    def _inc(self, name: str, amount: float = 1.0) -> None:
        self.metrics.counter(name).inc(amount)
        get_registry().counter(name).inc(amount)

    def _routing_key(self, message: Dict[str, Any]) -> str:
        session = message.get("session")
        if session is not None:
            return str(session)
        spec = message.get("spec")
        if not isinstance(spec, dict):
            raise ConfigurationError("request needs a spec or session")
        # Fingerprinting builds (but never runs) an evaluator; cache by
        # the canonical payload bytes so steady-state routing is a dict
        # lookup.
        import json

        cache_key = json.dumps(spec, sort_keys=True, separators=(",", ":"))
        with self._fingerprint_lock:
            cached = self._fingerprints.get(cache_key)
        if cached is not None:
            return cached
        fingerprint = fingerprint_for_payload(spec)
        with self._fingerprint_lock:
            self._fingerprints[cache_key] = fingerprint
        return fingerprint

    def _candidates(self, key: str) -> List[RouterReplica]:
        """Preference-ordered replicas for a key, healthiest filter first.

        Prefer routable replicas; if none (all ejected or draining),
        fall back to non-ejected, then to the raw preference order —
        a last-ditch attempt beats refusing outright, since ejection
        is advisory and the replica may be back.
        """
        preference = [self.replicas[name] for name in self.ring.preference(key)]
        routable = [replica for replica in preference if replica.routable]
        if routable:
            return routable
        alive = [
            replica
            for replica in preference
            if replica.state != STATE_EJECTED
        ]
        return alive or preference

    # -- request path ----------------------------------------------------

    async def dispatch(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Answer one client message (the server's _dispatch hook)."""
        op = message.get("op")
        request_id = message.get("id")
        if op == "ping":
            return ok_response(
                request_id,
                {
                    "pong": True,
                    "protocol": PROTOCOL_VERSION,
                    "router": True,
                },
            )
        if op == "status":
            return ok_response(request_id, await self.cluster_status())
        if op == "drain":
            return ok_response(request_id, await self.drain_all())
        if op in ROUTED_OPS:
            self._inc("cluster.requests")
            return await self._route(message)
        if op == "shutdown":
            # Handled by the server wrapper (it owns the stop event);
            # reaching here means a bare router without one.
            raise ConfigurationError("router cannot shut down replicas")
        raise ConfigurationError(f"unknown operation {op!r}")

    async def _route(self, message: Dict[str, Any]) -> Dict[str, Any]:
        op = str(message.get("op"))
        request_id = message.get("id")
        fields = {
            key: value
            for key, value in message.items()
            if key not in ("id", "op")
        }
        key = self._routing_key(message)
        candidates = self._candidates(key)
        last_failure = "no replicas available"
        attempt = 0
        with get_tracer().span("cluster.route", op=op):
            while attempt < self.config.max_attempts:
                primary = candidates[attempt % len(candidates)]
                backup = (
                    candidates[(attempt + 1) % len(candidates)]
                    if len(candidates) > 1
                    else None
                )
                outcome, winner = await self._attempt(
                    op, fields, primary, backup
                )
                if outcome is not None:
                    if outcome.get("ok"):
                        winner.record_success()
                        self._inc(f"cluster.routed.{winner.name}")
                        result = outcome.get("result") or {}
                        return ok_response(request_id, result)
                    error = outcome.get("error") or {}
                    code = str(error.get("code", "error"))
                    if code not in FAILOVER_CODES:
                        # The request's own answer; not a replica fault.
                        return error_response(
                            request_id,
                            code,
                            str(error.get("message", "request failed")),
                        )
                    last_failure = (
                        f"replica {winner.name!r} answered {code}"
                    )
                attempt += 1
                if attempt < self.config.max_attempts:
                    self._inc("cluster.failovers")
                    delay = min(
                        self.config.retry_backoff_max_s,
                        self.config.retry_backoff_s * (2 ** (attempt - 1)),
                    )
                    if delay > 0:
                        await asyncio.sleep(delay)
                    candidates = self._candidates(key)
        return error_response(
            request_id,
            "unavailable",
            f"{op} failed after {attempt} attempts: {last_failure}",
        )

    async def _attempt(
        self,
        op: str,
        fields: Dict[str, Any],
        primary: RouterReplica,
        backup: Optional[RouterReplica],
    ) -> Tuple[Optional[Dict[str, Any]], RouterReplica]:
        """One routing attempt: primary, hedged with backup if slow.

        Returns ``(response_envelope, answering_replica)``; the
        envelope is ``None`` when every contacted replica failed at the
        transport level (the caller then backs off and retries).
        """
        primary.n_requests += 1
        tasks: Dict["asyncio.Task[Dict[str, Any]]", RouterReplica] = {}
        primary_task = asyncio.ensure_future(
            primary.connection.request(op, fields)
        )
        tasks[primary_task] = primary
        hedge_deadline = (
            self.config.hedge_after_s if backup is not None else None
        )
        outcome: Optional[Dict[str, Any]] = None
        winner = primary
        hedged = False
        try:
            while tasks:
                done, _pending = await asyncio.wait(
                    set(tasks),
                    timeout=hedge_deadline,
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if not done:
                    # Primary is straggling: hedge once to the backup.
                    hedge_deadline = None
                    if backup is not None and not hedged:
                        hedged = True
                        self._inc("cluster.hedges")
                        backup.n_hedges += 1
                        backup.n_requests += 1
                        hedge_task = asyncio.ensure_future(
                            backup.connection.request(op, fields)
                        )
                        tasks[hedge_task] = backup
                    continue
                for task in done:
                    replica = tasks.pop(task)
                    try:
                        response = task.result()
                    except ReplicaUnavailableError:
                        replica.record_failure(self.config.eject_after)
                        continue
                    code = None
                    if not response.get("ok"):
                        code = str(
                            (response.get("error") or {}).get("code")
                        )
                    if code in FAILOVER_CODES and tasks:
                        # A hedge partner is still running; let it win.
                        outcome, winner = response, replica
                        continue
                    if hedged and replica is not primary:
                        self._inc("cluster.hedge_wins")
                    return response, replica
            return outcome, winner
        finally:
            for task in tasks:
                task.cancel()

    # -- cluster-wide operations ----------------------------------------

    async def _fetch_statuses(
        self,
    ) -> Dict[str, Optional[Dict[str, Any]]]:
        """Live ``status`` from every non-ejected replica, in parallel."""

        async def fetch(
            replica: RouterReplica,
        ) -> Optional[Dict[str, Any]]:
            if replica.state == STATE_EJECTED:
                return replica.last_status
            try:
                response = await asyncio.wait_for(
                    replica.connection.request("status"),
                    timeout=self.config.probe_timeout_s,
                )
            except (ReplicaUnavailableError, asyncio.TimeoutError):
                return replica.last_status
            if not response.get("ok"):
                return replica.last_status
            status = response.get("result") or {}
            replica.last_status = status
            return status

        names = list(self.replicas)
        statuses = await asyncio.gather(
            *(fetch(self.replicas[name]) for name in names)
        )
        return dict(zip(names, statuses))

    async def cluster_status(self) -> Dict[str, Any]:
        """Aggregated cluster view: router counters + per-replica rows."""
        statuses = await self._fetch_statuses()
        rows = []
        persistent_hits = 0
        requests = 0
        searches = 0
        for name, replica in self.replicas.items():
            row = replica.describe()
            status = statuses.get(name)
            if status is not None:
                row["status"] = status
                persistent_hits += int(status.get("persistent_hits") or 0)
                requests += int(status.get("requests") or 0)
                searches += int(status.get("searches") or 0)
            rows.append(row)
        routable = [
            replica.name
            for replica in self.replicas.values()
            if replica.routable
        ]
        counters = {
            name: snap["value"]
            for name, snap in self.metrics.snapshot().items()
            if snap.get("type") == "counter"
        }
        return {
            "router": True,
            "protocol": PROTOCOL_VERSION,
            "replicas": rows,
            "n_replicas": len(self.replicas),
            "routable": routable,
            "persistent_hits": persistent_hits,
            "requests": requests,
            "searches": searches,
            "cluster": counters,
        }

    async def drain_all(self) -> Dict[str, Any]:
        """Forward ``drain`` to every replica; report who complied."""

        async def drain(replica: RouterReplica) -> bool:
            try:
                response = await asyncio.wait_for(
                    replica.connection.request("drain"),
                    timeout=self.config.probe_timeout_s,
                )
            except (ReplicaUnavailableError, asyncio.TimeoutError):
                return False
            if response.get("ok"):
                replica.draining = True
                return True
            return False

        names = list(self.replicas)
        drained = await asyncio.gather(
            *(drain(self.replicas[name]) for name in names)
        )
        return {
            "draining": True,
            "replicas": {
                name: bool(flag) for name, flag in zip(names, drained)
            },
        }


class RouterServer(ServeServer):
    """Socket front-end: the ServeServer transport, router dispatch."""

    def __init__(
        self,
        router: ClusterRouter,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_path: Optional[str] = None,
        allow_shutdown: bool = True,
    ) -> None:
        super().__init__(
            service=None,  # type: ignore[arg-type]  # never dispatched to
            host=host,
            port=port,
            unix_path=unix_path,
            allow_shutdown=allow_shutdown,
        )
        self.router = router

    async def _dispatch(self, message: Dict[str, Any]) -> Dict[str, Any]:
        op = message.get("op")
        request_id = message.get("id")
        if op == "shutdown":
            if not self.allow_shutdown:
                return error_response(
                    request_id, "forbidden", "remote shutdown is disabled"
                )
            self.shutdown_requested.set()
            return ok_response(request_id, {"stopping": True})
        return await self.router.dispatch(message)


async def route_forever(
    topology: Topology,
    config: Optional[RouterConfig] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    unix_path: Optional[str] = None,
    ready_callback=None,
) -> None:
    """Run router + server until a ``shutdown`` request arrives."""
    router = ClusterRouter(topology, config)
    server = RouterServer(router, host=host, port=port, unix_path=unix_path)
    await router.start()
    try:
        await server.start()
        if ready_callback is not None:
            ready_callback(server)
        await server.shutdown_requested.wait()
    finally:
        await server.stop()
        await router.stop()
