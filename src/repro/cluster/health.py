"""Replica health tracking and the periodic probe loop.

Each replica the router knows about carries a small state machine:

``healthy``
    Answering probes and requests; full routing member.
``degraded``
    Recent consecutive failures, but under the ejection threshold.
    Still routed to (the failure may be a single dropped connection),
    just reported as degraded in cluster status.
``ejected``
    ``eject_after`` consecutive failures; removed from routing until a
    probe succeeds again, at which point it rejoins as healthy.  The
    consistent-hash ring is *not* rebuilt on ejection — keys keep their
    preference order and simply skip ejected entries — so a replica
    that recovers gets its old keys back with no reshuffling.

The :class:`HealthMonitor` drives transitions with periodic ``status``
probes over each replica's own multiplexed connection (so a probe also
exercises the exact transport requests use).  Request-path failures
feed the same counters; a replica can therefore be ejected purely by
failing traffic, and only a successful probe readmits it.

A replica whose status reports ``draining: true`` keeps its health
state but is skipped when routing *new* work, mirroring how the serve
layer itself refuses admission while draining.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, List, Optional

from repro.cluster.connection import (
    ReplicaConnection,
    ReplicaUnavailableError,
)
from repro.cluster.topology import Replica

STATE_HEALTHY = "healthy"
STATE_DEGRADED = "degraded"
STATE_EJECTED = "ejected"


class RouterReplica:
    """A topology replica plus its connection, health, and counters."""

    def __init__(
        self, replica: Replica, connect_timeout_s: float = 5.0
    ) -> None:
        self.replica = replica
        self.connection = ReplicaConnection(
            replica, connect_timeout_s=connect_timeout_s
        )
        self.state = STATE_HEALTHY
        self.draining = False
        self.consecutive_failures = 0
        self.n_requests = 0
        self.n_failures = 0
        self.n_hedges = 0
        self.n_probes = 0
        self.n_probe_failures = 0
        self.last_status: Optional[Dict[str, Any]] = None
        self.last_probe_at: Optional[float] = None

    @property
    def name(self) -> str:
        return self.replica.name

    @property
    def routable(self) -> bool:
        """Eligible for *new* work right now."""
        return self.state != STATE_EJECTED and not self.draining

    def record_success(self) -> None:
        if self.consecutive_failures or self.state != STATE_HEALTHY:
            self.consecutive_failures = 0
            self.state = STATE_HEALTHY

    def record_failure(self, eject_after: int) -> None:
        self.n_failures += 1
        self.consecutive_failures += 1
        if self.consecutive_failures >= eject_after:
            self.state = STATE_EJECTED
        else:
            self.state = STATE_DEGRADED

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "address": self.replica.address,
            "state": self.state,
            "draining": self.draining,
            "consecutive_failures": self.consecutive_failures,
            "requests": self.n_requests,
            "failures": self.n_failures,
            "hedges": self.n_hedges,
            "probes": self.n_probes,
            "probe_failures": self.n_probe_failures,
        }


class HealthMonitor:
    """Periodic ``status`` probes driving replica state transitions."""

    def __init__(
        self,
        replicas: List[RouterReplica],
        probe_interval_s: float = 1.0,
        probe_timeout_s: float = 5.0,
        eject_after: int = 3,
    ) -> None:
        self.replicas = replicas
        self.probe_interval_s = probe_interval_s
        self.probe_timeout_s = probe_timeout_s
        self.eject_after = max(1, int(eject_after))
        self._task: Optional["asyncio.Task[None]"] = None

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.ensure_future(self._run())

    async def stop(self) -> None:
        task, self._task = self._task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

    async def _run(self) -> None:
        while True:
            await asyncio.gather(
                *(self.probe(replica) for replica in self.replicas),
                return_exceptions=True,
            )
            await asyncio.sleep(self.probe_interval_s)

    async def probe(self, replica: RouterReplica) -> None:
        """One status probe; updates health state and cached status."""
        replica.n_probes += 1
        replica.last_probe_at = time.monotonic()
        try:
            response = await asyncio.wait_for(
                replica.connection.request("status"),
                timeout=self.probe_timeout_s,
            )
        except (ReplicaUnavailableError, asyncio.TimeoutError):
            replica.n_probe_failures += 1
            replica.record_failure(self.eject_after)
            return
        if not response.get("ok"):
            replica.n_probe_failures += 1
            replica.record_failure(self.eject_after)
            return
        status = response.get("result") or {}
        replica.last_status = status
        replica.draining = bool(status.get("draining"))
        replica.record_success()
