"""Area model anchored on the LSI Logic TR4101 (paper Sec. 4.3).

The paper scales a TR4101-based area estimate with the quadratic
feature-size factor::

    lambda = (alpha / 0.35)**2 * data_path_factor

where ``data_path_factor`` (from [Erc98]) adjusts for data paths
narrower than the TR4101's 32 bits.  We decompose the core area into
the components Trimaran parameterizes — control/fetch, ALUs, the bypass
network, memory ports, the register file — plus flop-based on-chip
storage for the trellis state (accumulated metrics, path memory,
branch tables).

The constants below were calibrated once so that the three Viterbi
instances of the paper's Table 1 land at approximately their published
areas (0.26 / 0.56 / 1.73 mm^2 at 1 Mbps); everything else the model is
used for follows without further tuning.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.clock import TR4101_FEATURE_UM, TR4101_WIDTH_BITS

# ---------------------------------------------------------------------------
# Calibrated component areas, in mm^2 at 0.35 um for a 32-bit datapath.
# ---------------------------------------------------------------------------

#: Fixed control/fetch/decode area plus its per-issue-slot increment.
CONTROL_BASE_MM2 = 0.25
CONTROL_PER_ISSUE_MM2 = 0.04

#: One 32-bit ALU (add/sub/compare/logic).
ALU_MM2 = 0.25

#: One 32-bit multiplier (used by the IIR datapaths, not the decoder).
MULT_MM2 = 1.10

#: One memory (load/store) port.
MEM_PORT_MM2 = 0.08

#: A 32-entry, 32-bit register file; scales linearly with entries.
REGFILE_MM2 = 0.15
REGFILE_WORDS = 32

#: Bypass/forwarding network between functional units; grows with the
#: square of the ALU count (all-to-all forwarding).
BYPASS_PER_ALU2_MM2 = 0.01

#: Flop-based on-chip storage (path memory, metrics, branch tables).
STORAGE_PER_BIT_MM2 = 3.0e-4

#: Affine width scaling: a narrow datapath still pays a fixed share of
#: wiring/control inside each unit ([Erc98]-style data_path_factor).
WIDTH_FACTOR_FLOOR = 0.25


def data_path_factor(width_bits: int) -> float:
    """Area factor of a ``width_bits`` datapath relative to 32 bits."""
    if width_bits < 1:
        raise ConfigurationError("datapath width must be positive")
    width = min(width_bits, TR4101_WIDTH_BITS)
    return WIDTH_FACTOR_FLOOR + (1.0 - WIDTH_FACTOR_FLOOR) * (
        width / float(TR4101_WIDTH_BITS)
    )


def feature_scale(feature_um: float) -> float:
    """The paper's quadratic feature-size scaling ``(alpha/0.35)**2``."""
    if feature_um <= 0:
        raise ConfigurationError("feature size must be positive")
    return (feature_um / TR4101_FEATURE_UM) ** 2


@dataclass(frozen=True)
class AreaBreakdown:
    """Itemized area estimate (mm^2, at the target feature size)."""

    control: float
    alus: float
    mults: float
    bypass: float
    mem_ports: float
    regfile: float
    storage: float

    @property
    def total(self) -> float:
        return (
            self.control
            + self.alus
            + self.mults
            + self.bypass
            + self.mem_ports
            + self.regfile
            + self.storage
        )

    def __str__(self) -> str:
        return (
            f"total={self.total:.3f} mm^2 (control={self.control:.3f}, "
            f"alus={self.alus:.3f}, mults={self.mults:.3f}, "
            f"bypass={self.bypass:.3f}, mem={self.mem_ports:.3f}, "
            f"regfile={self.regfile:.3f}, storage={self.storage:.3f})"
        )


def estimate_area(
    n_alus: int,
    n_mem_ports: int,
    datapath_width: int,
    storage_bits: int,
    feature_um: float,
    n_mults: int = 0,
    regfile_words: int = REGFILE_WORDS,
) -> AreaBreakdown:
    """Area of a Trimaran-style machine instance.

    All datapath components (ALUs, multipliers, register file) scale
    with the data-path factor; control scales with issue width but not
    datapath width; everything scales quadratically with feature size.
    """
    if n_alus < 1:
        raise ConfigurationError("need at least one ALU")
    if n_mem_ports < 1:
        raise ConfigurationError("need at least one memory port")
    if storage_bits < 0 or n_mults < 0 or regfile_words < 1:
        raise ConfigurationError("invalid machine description")
    dpf = data_path_factor(datapath_width)
    lam = feature_scale(feature_um)
    issue_width = n_alus + n_mults + n_mem_ports + 1  # +1 branch slot
    return AreaBreakdown(
        control=(CONTROL_BASE_MM2 + CONTROL_PER_ISSUE_MM2 * issue_width) * lam,
        alus=ALU_MM2 * n_alus * dpf * lam,
        mults=MULT_MM2 * n_mults * dpf * lam,
        bypass=BYPASS_PER_ALU2_MM2 * (n_alus + n_mults) ** 2 * dpf * lam,
        mem_ports=MEM_PORT_MM2 * n_mem_ports * lam,
        regfile=REGFILE_MM2 * (regfile_words / REGFILE_WORDS) * dpf * lam,
        storage=STORAGE_PER_BIT_MM2 * storage_bits * lam,
    )
