"""Clock-rate model (paper Sec. 4.3).

The paper's model assumes "clock rates scale linearly with feature size
with smaller sizes resulting in faster clock rates" and applies
width-dependent scaling factors from [Erc98] for narrower data paths
(shorter carry chains close timing at higher frequencies).  The anchor
point is the LSI Logic TR4101: a 32-bit core at 0.35 µm running at a
maximum of 81 MHz.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

#: The TR4101 anchor: 81 MHz at 0.35 um with a 32-bit data path.
TR4101_CLOCK_MHZ = 81.0
TR4101_FEATURE_UM = 0.35
TR4101_WIDTH_BITS = 32

#: Exponent of the mild width speedup: a half-width datapath is about
#: 7% faster, reflecting shorter carry chains but unchanged control
#: paths (fit to the multiple-precision data of [Erc98]).
WIDTH_SPEED_EXPONENT = 0.10


def width_speed_factor(width_bits: int) -> float:
    """Clock speedup of a ``width_bits`` datapath relative to 32 bits."""
    if width_bits < 1:
        raise ConfigurationError("datapath width must be positive")
    return (TR4101_WIDTH_BITS / float(width_bits)) ** WIDTH_SPEED_EXPONENT


def clock_mhz(feature_um: float, width_bits: int = TR4101_WIDTH_BITS) -> float:
    """Maximum clock rate for a feature size and datapath width.

    Linear scaling in feature size around the TR4101 anchor point, with
    the width factor of :func:`width_speed_factor` applied on top.
    """
    if feature_um <= 0:
        raise ConfigurationError("feature size must be positive")
    scale = TR4101_FEATURE_UM / feature_um
    return TR4101_CLOCK_MHZ * scale * width_speed_factor(width_bits)
