"""Operation-count records.

The Trimaran flow in the paper "collects several statistics for each
solution instance including the total number of operations executed
(load, store, ALU, branch, etc.)" (Sec. 4.2).  This module defines the
record those statistics live in, grouped by the resource class that
executes them on the VLIW machine model.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class OperationCounts:
    """Operations executed per unit of work (e.g. per decoded bit).

    ``alu`` covers adds/subtracts/compares/logic, ``mult`` full
    multiplications (a separate, larger functional unit), ``load`` and
    ``store`` memory accesses, and ``branch`` control transfers.
    """

    alu: float = 0.0
    mult: float = 0.0
    load: float = 0.0
    store: float = 0.0
    branch: float = 0.0

    def __add__(self, other: "OperationCounts") -> "OperationCounts":
        return OperationCounts(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def scaled(self, factor: float) -> "OperationCounts":
        """All counts multiplied by ``factor`` (e.g. amortization)."""
        return OperationCounts(
            **{f.name: getattr(self, f.name) * factor for f in fields(self)}
        )

    @property
    def memory(self) -> float:
        """Combined memory operations (loads + stores)."""
        return self.load + self.store

    @property
    def total(self) -> float:
        """All operations of any class."""
        return sum(getattr(self, f.name) for f in fields(self))

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __str__(self) -> str:
        parts = ", ".join(
            f"{f.name}={getattr(self, f.name):.1f}" for f in fields(self)
        )
        return f"OperationCounts({parts})"
