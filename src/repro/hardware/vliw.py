"""VLIW machine model and scheduler — the Trimaran stand-in.

The paper compiles each candidate decoder with Trimaran onto a
parameterized VLIW/EPIC machine (register file size, number of ALUs,
memory ports, ...) and reads off the cycles needed per decoded bit.
Here the same role is played by a *leveled program*: the candidate's
inner loop expressed as a dependence chain of operation groups, which a
resource-constrained scheduler packs onto a machine description.  The
resulting cycle count, together with the clock model, yields throughput;
together with the area model, yields mm^2.

``optimize_machine`` performs the "fixed throughput" evaluation of
Sec. 4.2: enumerate machine configurations, keep those meeting the
throughput target, and return the smallest-area one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError, SynthesisError
from repro.hardware.area import AreaBreakdown, estimate_area
from repro.hardware.clock import clock_mhz
from repro.hardware.opcounts import OperationCounts

#: Enumeration limits for machine optimization: beyond this the model
#: (a single-cluster VLIW) stops being credible, which is what makes
#: aggressive specs infeasible (paper Table 3, last row).
MAX_ALUS = 32
MAX_MULTS = 8
MAX_MEM_PORTS = 6
REGFILE_CHOICES = (32, 64, 128, 256)

#: Per-iteration loop overhead (induction update + compare), cycles.
LOOP_OVERHEAD_CYCLES = 2


@dataclass(frozen=True)
class MachineConfig:
    """One point in Trimaran's hardware parameter space."""

    n_alus: int
    n_mem_ports: int = 1
    n_mults: int = 0
    regfile_words: int = 32
    feature_um: float = 0.25
    datapath_width: int = 32

    def __post_init__(self) -> None:
        if self.n_alus < 1 or self.n_mem_ports < 1 or self.n_mults < 0:
            raise ConfigurationError("machine needs >=1 ALU and memory port")
        if self.regfile_words < 8:
            raise ConfigurationError("register file unrealistically small")

    @property
    def issue_width(self) -> int:
        """Total issue slots (functional units + one branch slot)."""
        return self.n_alus + self.n_mults + self.n_mem_ports + 1

    @property
    def clock_mhz(self) -> float:
        return clock_mhz(self.feature_um, self.datapath_width)


@dataclass(frozen=True)
class ProgramLevel:
    """One dependence level: all its ops may run in parallel, but only
    after every op of the previous level has completed."""

    label: str
    counts: OperationCounts


@dataclass
class LeveledProgram:
    """A kernel's inner loop as a chain of operation levels.

    ``storage_bits`` is the on-chip state the kernel needs (path memory,
    coefficient tables, ...), ``live_words`` its register pressure, and
    ``datapath_width`` the widest value it computes with.
    """

    name: str
    levels: List[ProgramLevel] = field(default_factory=list)
    storage_bits: int = 0
    live_words: int = 8
    datapath_width: int = 32

    def add_level(self, label: str, **counts: float) -> None:
        self.levels.append(ProgramLevel(label, OperationCounts(**counts)))

    @property
    def op_counts(self) -> OperationCounts:
        total = OperationCounts()
        for level in self.levels:
            total = total + level.counts
        return total


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling a program onto a machine."""

    cycles: float
    spill_ops: float
    level_cycles: Tuple[float, ...]

    @property
    def cycles_per_iteration(self) -> float:
        return self.cycles


def _level_cycles(counts: OperationCounts, machine: MachineConfig) -> float:
    """Cycles to drain one level on the machine (resource bound)."""
    if counts.mult > 0 and machine.n_mults == 0:
        return math.inf
    bounds = [
        counts.alu / machine.n_alus,
        counts.memory / machine.n_mem_ports,
        counts.branch / 1.0,
        counts.total / machine.issue_width,
    ]
    if machine.n_mults:
        bounds.append(counts.mult / machine.n_mults)
    return max(1.0, math.ceil(max(bounds)))


def schedule(program: LeveledProgram, machine: MachineConfig) -> ScheduleResult:
    """Resource-constrained schedule of one loop iteration.

    Levels are packed in dependence order; register pressure beyond the
    machine's register file adds spill traffic (Trimaran's "dynamic
    register allocation overhead" statistic) as an extra memory-bound
    level.
    """
    level_cycles = [_level_cycles(level.counts, machine) for level in program.levels]
    spill_ops = 0.0
    if program.live_words > machine.regfile_words:
        spill_ops = 2.0 * (program.live_words - machine.regfile_words)
        level_cycles.append(
            _level_cycles(OperationCounts(load=spill_ops / 2, store=spill_ops / 2), machine)
        )
    cycles = sum(level_cycles) + LOOP_OVERHEAD_CYCLES
    return ScheduleResult(
        cycles=cycles, spill_ops=spill_ops, level_cycles=tuple(level_cycles)
    )


def throughput_bps(
    program: LeveledProgram, machine: MachineConfig, work_per_iteration: float = 1.0
) -> float:
    """Work items (e.g. decoded bits) per second on ``machine``."""
    result = schedule(program, machine)
    if not math.isfinite(result.cycles):
        return 0.0
    return machine.clock_mhz * 1.0e6 * work_per_iteration / result.cycles


@dataclass(frozen=True)
class ImplementationEstimate:
    """A machine choice with its schedule, area, and throughput."""

    machine: MachineConfig
    schedule: ScheduleResult
    area: AreaBreakdown
    throughput_bps: float

    @property
    def area_mm2(self) -> float:
        return self.area.total


def _machine_area(program: LeveledProgram, machine: MachineConfig) -> AreaBreakdown:
    return estimate_area(
        n_alus=machine.n_alus,
        n_mem_ports=machine.n_mem_ports,
        datapath_width=machine.datapath_width,
        storage_bits=program.storage_bits,
        feature_um=machine.feature_um,
        n_mults=machine.n_mults,
        regfile_words=machine.regfile_words,
    )


def evaluate_machine(
    program: LeveledProgram, machine: MachineConfig
) -> ImplementationEstimate:
    """Schedule + area + throughput for one explicit machine choice."""
    sched = schedule(program, machine)
    area = _machine_area(program, machine)
    tput = throughput_bps(program, machine)
    return ImplementationEstimate(machine, sched, area, tput)


def optimize_machine(
    program: LeveledProgram,
    target_throughput_bps: float,
    feature_um: float = 0.25,
    needs_mults: Optional[bool] = None,
) -> ImplementationEstimate:
    """Smallest-area machine meeting a throughput target.

    Enumerates ALU count, memory ports, multiplier count and register
    file size (the Trimaran architecture parameters of Sec. 4.2) and
    returns the feasible configuration with minimum area.  Raises
    :class:`SynthesisError` when even the largest machine cannot reach
    the target — the mechanism behind "Not Feasible" verdicts.
    """
    if target_throughput_bps <= 0:
        raise ConfigurationError("throughput target must be positive")
    if needs_mults is None:
        needs_mults = program.op_counts.mult > 0
    mult_range = range(1, MAX_MULTS + 1) if needs_mults else (0,)
    best: Optional[ImplementationEstimate] = None
    for n_alus in range(1, MAX_ALUS + 1):
        for n_ports in range(1, MAX_MEM_PORTS + 1):
            for n_mults in mult_range:
                for regfile in REGFILE_CHOICES:
                    machine = MachineConfig(
                        n_alus=n_alus,
                        n_mem_ports=n_ports,
                        n_mults=n_mults,
                        regfile_words=regfile,
                        feature_um=feature_um,
                        datapath_width=program.datapath_width,
                    )
                    estimate = evaluate_machine(program, machine)
                    if estimate.throughput_bps < target_throughput_bps:
                        continue
                    if best is None or estimate.area_mm2 < best.area_mm2:
                        best = estimate
    if best is None:
        raise SynthesisError(
            f"{program.name}: no machine with <= {MAX_ALUS} ALUs reaches "
            f"{target_throughput_bps:.3g} items/s at {feature_um} um"
        )
    return best
