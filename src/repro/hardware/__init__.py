"""Hardware cost-evaluation substrate (Trimaran / TR4101 / HYPER stand-ins).

Provides the area and throughput halves of the paper's cost-evaluation
engine: a VLIW machine model with a resource-constrained scheduler fed
by analytic operation traces (for the Viterbi MetaCore), and a
HYPER-style behavioral-synthesis estimator (for the IIR MetaCore).
The per-operation energy model (:class:`EnergyEstimate` /
:func:`estimate_energy`) is the dynamic-energy base of the power-aware
cost engine in :mod:`repro.power`, which adds technology/DVFS scaling
and storage leakage on top.
"""

from repro.hardware.opcounts import OperationCounts
from repro.hardware.clock import clock_mhz, width_speed_factor
from repro.hardware.area import (
    AreaBreakdown,
    data_path_factor,
    estimate_area,
    feature_scale,
)
from repro.hardware.vliw import (
    ImplementationEstimate,
    LeveledProgram,
    MachineConfig,
    ProgramLevel,
    ScheduleResult,
    evaluate_machine,
    optimize_machine,
    schedule,
    throughput_bps,
)
from repro.hardware.trace import ViterbiInstanceParams, viterbi_program
from repro.hardware.listsched import (
    DataflowGraph,
    DFGNode,
    ListSchedule,
    dfg_from_sections,
    list_schedule,
    minimum_resources,
)
from repro.hardware.power import EnergyEstimate, estimate_energy
from repro.hardware.synthesis import (
    DataflowStats,
    SynthesisEstimate,
    add_delay_ns,
    estimate_iir_implementation,
    mult_delay_ns,
)

__all__ = [
    "OperationCounts",
    "clock_mhz",
    "width_speed_factor",
    "AreaBreakdown",
    "data_path_factor",
    "estimate_area",
    "feature_scale",
    "ImplementationEstimate",
    "LeveledProgram",
    "MachineConfig",
    "ProgramLevel",
    "ScheduleResult",
    "evaluate_machine",
    "optimize_machine",
    "schedule",
    "throughput_bps",
    "ViterbiInstanceParams",
    "viterbi_program",
    "DataflowGraph",
    "DFGNode",
    "ListSchedule",
    "dfg_from_sections",
    "list_schedule",
    "minimum_resources",
    "EnergyEstimate",
    "estimate_energy",
    "DataflowStats",
    "SynthesisEstimate",
    "add_delay_ns",
    "estimate_iir_implementation",
    "mult_delay_ns",
]
