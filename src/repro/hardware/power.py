"""Energy model for the VLIW machine.

Trimaran-era studies reported per-operation energies alongside cycle
counts; an algorithm-level optimizer cares because area and energy pull
in different directions (a wide machine finishes sooner but burns more
per cycle).  This model prices a leveled program the same way the area
model prices the machine: per-operation energies by resource class,
scaled with datapath width (linear) and supply/feature size (the
classic ~alpha^3 dynamic-energy scaling when voltage tracks feature
size), plus per-cycle clock-tree and leakage overheads.

Constants are representative of late-1990s embedded cores (anchored,
like the area model, at the TR4101's 0.35 um generation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.clock import TR4101_FEATURE_UM, TR4101_WIDTH_BITS
from repro.hardware.vliw import LeveledProgram, MachineConfig, schedule

# Per-operation energies at 0.35 um, 32-bit datapath, in picojoules.
ALU_ENERGY_PJ = 35.0
MULT_ENERGY_PJ = 220.0
MEMORY_ENERGY_PJ = 110.0
BRANCH_ENERGY_PJ = 25.0

#: Clock tree + idle-datapath energy per machine cycle, pJ per issue slot.
CYCLE_OVERHEAD_PJ_PER_SLOT = 6.0

#: Voltage is assumed to scale with feature size (constant-field
#: scaling), so dynamic energy scales with the cube of the feature.
ENERGY_FEATURE_EXPONENT = 3.0


def _scale(feature_um: float, width_bits: int) -> float:
    if feature_um <= 0:
        raise ConfigurationError("feature size must be positive")
    if width_bits < 1:
        raise ConfigurationError("datapath width must be positive")
    feature = (feature_um / TR4101_FEATURE_UM) ** ENERGY_FEATURE_EXPONENT
    width = min(width_bits, TR4101_WIDTH_BITS) / TR4101_WIDTH_BITS
    return feature * width


@dataclass(frozen=True)
class EnergyEstimate:
    """Energy breakdown for one iteration of a kernel (e.g. per bit)."""

    operation_pj: float
    overhead_pj: float

    @property
    def total_pj(self) -> float:
        return self.operation_pj + self.overhead_pj

    @property
    def total_nj(self) -> float:
        return self.total_pj / 1000.0

    def power_mw(self, throughput_per_s: float) -> float:
        """Average power at a given iteration rate."""
        if throughput_per_s <= 0:
            raise ConfigurationError("throughput must be positive")
        return self.total_pj * 1e-12 * throughput_per_s * 1e3


def estimate_energy(
    program: LeveledProgram, machine: MachineConfig
) -> EnergyEstimate:
    """Energy of one program iteration on a machine.

    Operation energy counts the work actually executed; overhead
    charges the clock tree and idle slots for every scheduled cycle —
    which is how an over-wide machine loses on energy even when it wins
    on throughput.
    """
    counts = program.op_counts
    scale = _scale(machine.feature_um, machine.datapath_width)
    operation = (
        counts.alu * ALU_ENERGY_PJ
        + counts.mult * MULT_ENERGY_PJ
        + counts.memory * MEMORY_ENERGY_PJ
        + counts.branch * BRANCH_ENERGY_PJ
    ) * scale
    result = schedule(program, machine)
    # Spill traffic is memory work the register file couldn't hold.
    operation += result.spill_ops * MEMORY_ENERGY_PJ * scale
    overhead = (
        result.cycles * machine.issue_width * CYCLE_OVERHEAD_PJ_PER_SLOT * scale
    )
    return EnergyEstimate(operation_pj=operation, overhead_pj=overhead)
