"""Operation-trace generation for Viterbi decoder instances.

The paper generates C source for every candidate decoder and lets
Trimaran compile, optimize and simulate it to count operations.  Here
the same information — how much work one decoded bit costs, with what
dependence structure, at what datapath width, with how much on-chip
state — is derived analytically from the decoder parameters and
packaged as a :class:`~repro.hardware.vliw.LeveledProgram` for the
machine model.  The counts follow directly from the algorithm in
Sec. 3.2/3.3: branch-metric evaluation and add-compare-select touch all
``2**(K-1)`` states, the multiresolution recomputation touches only the
``M`` best, and trace-back walks ``L`` survivor branches per bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.hardware.vliw import LeveledProgram

#: Headroom bits in the accumulated-error registers above the branch
#: metric width (covers summation growth between renormalizations).
ACCUMULATOR_HEADROOM_BITS = 5


def _ceil_log2(value: int) -> int:
    return max(1, math.ceil(math.log2(max(value, 2))))


@dataclass(frozen=True)
class ViterbiInstanceParams:
    """Algorithm-level parameters of one decoder instance (Table 2).

    ``high_resolution_bits`` (R2) and ``multires_paths`` (M) are ``None``
    for pure hard/soft decoding; ``normalization_count`` (N) is 0 then.
    """

    constraint_length: int
    traceback_depth: int
    low_resolution_bits: int
    n_symbols: int = 2
    high_resolution_bits: Optional[int] = None
    multires_paths: Optional[int] = None
    normalization_count: int = 0

    def __post_init__(self) -> None:
        if self.constraint_length < 2:
            raise ConfigurationError("constraint length must be >= 2")
        if self.traceback_depth < 1:
            raise ConfigurationError("traceback depth must be >= 1")
        if self.low_resolution_bits < 1:
            raise ConfigurationError("R1 must be >= 1 bit")
        if self.n_symbols < 1:
            raise ConfigurationError("need >= 1 symbol per branch")
        if (self.high_resolution_bits is None) != (self.multires_paths is None):
            raise ConfigurationError("R2 and M must be given together")
        if self.multires_paths is not None:
            if not 1 <= self.multires_paths <= self.n_states:
                raise ConfigurationError("M out of [1, 2**(K-1)]")
            if self.high_resolution_bits <= self.low_resolution_bits:
                raise ConfigurationError("R2 must exceed R1")
            if not 1 <= self.normalization_count <= self.multires_paths:
                raise ConfigurationError("N out of [1, M]")
        elif self.normalization_count != 0:
            raise ConfigurationError("N must be 0 without multiresolution")

    @property
    def n_states(self) -> int:
        return 1 << (self.constraint_length - 1)

    @property
    def is_multiresolution(self) -> bool:
        return self.multires_paths is not None

    @property
    def metric_width_bits(self) -> int:
        """Width of low-resolution branch metrics."""
        return self.low_resolution_bits + _ceil_log2(self.n_symbols)

    @property
    def high_metric_width_bits(self) -> int:
        """Width of high-resolution branch metrics (0 without multires)."""
        if not self.is_multiresolution:
            return 0
        return self.high_resolution_bits + _ceil_log2(self.n_symbols)

    @property
    def accumulator_width_bits(self) -> int:
        base = max(self.metric_width_bits, self.high_metric_width_bits)
        return base + ACCUMULATOR_HEADROOM_BITS

    @property
    def datapath_width_bits(self) -> int:
        """Widest value the decoder computes with."""
        return self.accumulator_width_bits

    @property
    def storage_bits(self) -> int:
        """On-chip state: path memory, metrics, branch/predecessor tables."""
        s = self.n_states
        path_memory = s * self.traceback_depth
        metrics = s * self.accumulator_width_bits
        low_tables = s * 2 * self.n_symbols * self.low_resolution_bits
        pred_tables = s * 2 * (self.constraint_length - 1)
        high_tables = 0
        if self.is_multiresolution:
            high_tables = s * 2 * self.n_symbols * self.high_resolution_bits
        return path_memory + metrics + low_tables + pred_tables + high_tables


def viterbi_program(params: ViterbiInstanceParams) -> LeveledProgram:
    """Build the leveled one-bit decoding loop for the machine model."""
    s = params.n_states
    n = params.n_symbols
    depth = params.traceback_depth
    program = LeveledProgram(
        name=f"viterbi_K{params.constraint_length}",
        storage_bits=params.storage_bits,
        datapath_width=params.datapath_width_bits,
        # Accumulated metrics live in registers, plus loop temporaries
        # and the recomputation working set.
        live_words=s
        + 8
        + (params.multires_paths if params.is_multiresolution else 0),
    )
    program.add_level("fetch-symbols", load=n)
    quant_ops = n * params.low_resolution_bits
    if params.is_multiresolution:
        quant_ops += n * params.high_resolution_bits
    program.add_level("quantize", alu=quant_ops)
    # |level - ideal| per (state, branch, symbol): subtract + abs.
    program.add_level("branch-metrics", alu=s * 2 * n)
    if n > 1:
        program.add_level("metric-reduce", alu=s * 2 * (n - 1))
    # Add-compare-select: two adds, one compare, one select per state.
    program.add_level("acs-add", alu=s * 2)
    program.add_level("acs-compare-select", alu=s * 2)
    if params.is_multiresolution:
        m = params.multires_paths
        # Partial selection of the M best accumulated metrics.
        program.add_level("select-paths", alu=s + m * _ceil_log2(s))
        # High-resolution branch metrics for 2 branches into each of the
        # M states: subtract+abs per symbol, then the reduce and ACS.
        program.add_level("recompute-high", alu=m * 2 * n * 2)
        program.add_level("normalize", alu=params.normalization_count + 2)
        program.add_level("acs-high", alu=m * 3)
    # Survivor decisions written to path memory, packed 16 per word.
    program.add_level("path-store", store=max(1, s // 16))
    # Block trace-back: a walk of 1.5 L steps emits L/2 bits, so the
    # amortized cost per decoded bit is three fetches and three index
    # updates regardless of depth (depth still costs path memory).
    program.add_level("trace-back", load=3, alu=3)
    program.add_level("emit", store=1, alu=2, branch=1)
    return program
