"""Node-level dataflow-graph scheduling (HYPER's actual mechanics).

The calibrated synthesis estimator (:mod:`repro.hardware.synthesis`)
prices IIR datapaths from operation *counts* and bounds.  This module
implements the machinery those bounds abstract: an explicit dataflow
graph of multiply/add nodes with dependence edges, ASAP/ALAP timing,
slack/mobility, and resource-constrained list scheduling — so estimates
can be validated node-by-node and users can inspect real schedules.

Graphs for the filter structures are built from their coefficient
topology (`dfg_from_sections` covers the cascade/parallel family, the
main users of resource sharing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.observability.metrics import get_registry
from repro.observability.trace import get_tracer

#: Operation kinds with their (relative) single-cycle resource classes.
OP_KINDS = ("mult", "add")


@dataclass
class DFGNode:
    """One operation in a dataflow graph."""

    index: int
    kind: str
    #: Indices of nodes whose results this node consumes.
    predecessors: Tuple[int, ...] = ()
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind not in OP_KINDS:
            raise ConfigurationError(f"unknown op kind {self.kind!r}")


@dataclass
class DataflowGraph:
    """A DAG of operations executed once per sample."""

    nodes: List[DFGNode] = field(default_factory=list)

    def add(self, kind: str, predecessors: Sequence[int] = (), label: str = "") -> int:
        """Append a node; returns its index."""
        for predecessor in predecessors:
            if not 0 <= predecessor < len(self.nodes):
                raise ConfigurationError(
                    f"predecessor {predecessor} does not exist yet"
                )
        node = DFGNode(
            index=len(self.nodes),
            kind=kind,
            predecessors=tuple(predecessors),
            label=label,
        )
        self.nodes.append(node)
        return node.index

    def count(self, kind: str) -> int:
        return sum(1 for node in self.nodes if node.kind == kind)

    # -- timing ----------------------------------------------------------

    def asap(self) -> List[int]:
        """Earliest start cycle per node (unit-latency operations)."""
        times = [0] * len(self.nodes)
        for node in self.nodes:  # nodes are in topological order
            if node.predecessors:
                times[node.index] = 1 + max(
                    times[p] for p in node.predecessors
                )
        return times

    def critical_path(self) -> int:
        """Length of the longest dependence chain, in cycles."""
        if not self.nodes:
            return 0
        return max(self.asap()) + 1

    def alap(self, deadline: Optional[int] = None) -> List[int]:
        """Latest start cycle per node meeting the deadline."""
        horizon = (deadline if deadline is not None else self.critical_path()) - 1
        if horizon + 1 < self.critical_path():
            raise ConfigurationError("deadline shorter than the critical path")
        times = [horizon] * len(self.nodes)
        successors: Dict[int, List[int]] = {i: [] for i in range(len(self.nodes))}
        for node in self.nodes:
            for predecessor in node.predecessors:
                successors[predecessor].append(node.index)
        for node in reversed(self.nodes):
            if successors[node.index]:
                times[node.index] = (
                    min(times[s] for s in successors[node.index]) - 1
                )
        return times

    def mobility(self, deadline: Optional[int] = None) -> List[int]:
        """Slack (ALAP - ASAP) per node; 0 = on the critical path."""
        asap_times = self.asap()
        alap_times = self.alap(deadline)
        return [l - e for e, l in zip(asap_times, alap_times)]


@dataclass(frozen=True)
class ListSchedule:
    """Outcome of resource-constrained list scheduling."""

    cycles: int
    #: node index -> start cycle
    start_times: Tuple[int, ...]
    resources: Dict[str, int]

    def utilization(self, graph: DataflowGraph, kind: str) -> float:
        """Busy fraction of the given resource class."""
        units = self.resources.get(kind, 0)
        if units == 0 or self.cycles == 0:
            return 0.0
        return graph.count(kind) / (units * self.cycles)


def list_schedule(
    graph: DataflowGraph, resources: Dict[str, int]
) -> ListSchedule:
    """Mobility-ordered list scheduling with unit-latency operations.

    Classic HYPER-style heuristic: at every cycle, ready nodes compete
    for their resource class; lower mobility (closer to the critical
    path) wins.
    """
    for kind in OP_KINDS:
        if graph.count(kind) > 0 and resources.get(kind, 0) < 1:
            raise ConfigurationError(f"no {kind} units provided")
    n = len(graph.nodes)
    with get_tracer().span(
        "hardware.list_schedule", nodes=n, resources=dict(resources)
    ) as sched_span:
        schedule = _list_schedule(graph, resources, n)
        sched_span.set(cycles=schedule.cycles)
    registry = get_registry()
    registry.counter("hardware.schedules").inc()
    registry.counter("hardware.scheduled_nodes").inc(n)
    return schedule


def _list_schedule(
    graph: DataflowGraph, resources: Dict[str, int], n: int
) -> ListSchedule:
    mobility = graph.mobility()
    start = [-1] * n
    done = [False] * n
    remaining = n
    cycle = 0
    while remaining > 0:
        if cycle > 4 * n + 16:
            raise ConfigurationError("list scheduling failed to converge")
        budget = dict(resources)
        ready = [
            node
            for node in graph.nodes
            if start[node.index] < 0
            and all(
                done[p] for p in node.predecessors
            )
        ]
        ready.sort(key=lambda node: (mobility[node.index], node.index))
        scheduled_now = []
        for node in ready:
            if budget.get(node.kind, 0) > 0:
                budget[node.kind] -= 1
                start[node.index] = cycle
                scheduled_now.append(node.index)
                remaining -= 1
        for index in scheduled_now:
            pass  # results become visible at the *next* cycle
        cycle += 1
        for index in scheduled_now:
            done[index] = True
    return ListSchedule(
        cycles=cycle, start_times=tuple(start), resources=dict(resources)
    )


def minimum_resources(
    graph: DataflowGraph, deadline: int
) -> Dict[str, int]:
    """Smallest unit counts meeting a cycle deadline (greedy search)."""
    if deadline < graph.critical_path():
        raise ConfigurationError("deadline shorter than the critical path")
    resources = {
        kind: max(1, -(-graph.count(kind) // deadline))
        for kind in OP_KINDS
        if graph.count(kind)
    }
    while True:
        schedule = list_schedule(graph, resources)
        if schedule.cycles <= deadline:
            return resources
        # Grow the busiest class.
        busiest = max(
            resources,
            key=lambda kind: graph.count(kind) / resources[kind],
        )
        resources[busiest] += 1


# ---------------------------------------------------------------------------
# Graph builders for the second-order-section structures
# ---------------------------------------------------------------------------


def dfg_from_sections(
    sections: Sequence[Tuple[Sequence[float], Sequence[float]]],
    parallel_sections: bool = False,
) -> DataflowGraph:
    """Dataflow graph of a cascade or parallel bank of DF2 sections.

    Each (b, a) section contributes its multiplies and accumulation
    adds; in cascade mode section i+1 consumes section i's output, in
    parallel mode all sections consume the input and a final adder tree
    merges them.
    """
    graph = DataflowGraph()
    outputs: List[int] = []
    source: Optional[int] = None  # None = primary input (no node)
    for s_idx, (b, a) in enumerate(sections):
        deps = [] if source is None else [source]
        # Feedback multiplies (delayed states are register reads: no
        # dependence on this sample's nodes).
        feedback_adds: List[int] = []
        for i, coeff in enumerate(list(a)[1:], start=1):
            node = graph.add("mult", (), f"s{s_idx}.a{i}")
            feedback_adds.append(node)
        # w = u - sum(a_i w[n-i]): chain of adds off the section input.
        acc = None
        for node in feedback_adds:
            previous = [node] + ([acc] if acc is not None else deps)
            acc = graph.add("add", [p for p in previous if p is not None],
                            f"s{s_idx}.fb")
        w_node = acc  # may be None for pure-FIR sections
        # Feedforward multiplies off w (b0) and delayed w's.
        ff_nodes = []
        for i, coeff in enumerate(b):
            preds = [w_node] if (i == 0 and w_node is not None) else []
            ff_nodes.append(graph.add("mult", preds, f"s{s_idx}.b{i}"))
        acc = ff_nodes[0]
        for node in ff_nodes[1:]:
            acc = graph.add("add", [acc, node], f"s{s_idx}.ff")
        outputs.append(acc)
        if not parallel_sections:
            source = acc
            outputs = [acc]
    # Parallel merge tree.
    while len(outputs) > 1:
        merged = []
        for i in range(0, len(outputs) - 1, 2):
            merged.append(graph.add("add", [outputs[i], outputs[i + 1]], "merge"))
        if len(outputs) % 2:
            merged.append(outputs[-1])
        outputs = merged
    return graph
