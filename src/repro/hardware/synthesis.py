"""HYPER-style behavioral synthesis estimation for IIR datapaths.

The paper evaluates each IIR candidate with the HYPER behavioral
synthesis tools [Rab91]: Silage in, early estimates of execution units,
registers, interconnect, clock cycle and cycle count out.  This module
reproduces that estimation pipeline for the dataflow statistics our
realization structures expose:

1. pick the clock period from the slowest operator at the word length;
2. check the *recursion bound* — operations on a feedback cycle cannot
   be pipelined, so the cycle's latency caps the sample rate;
3. compute resource-constrained unit counts from the ops-per-sample and
   the cycles available in one sample period (list-scheduling bound);
4. count registers (delays plus pipeline/working registers) and add an
   interconnect term that grows with the unit count;
5. price everything with word-length-dependent area models.

Area constants are expressed at HYPER's era library (1.2 um) so the
absolute numbers land in the paper's Table 4 range; they were
calibrated once against that table's best-area column.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError, SynthesisError


@dataclass(frozen=True)
class DataflowStats:
    """Per-output-sample dataflow characteristics of a datapath.

    This is the contract between algorithm realizations (e.g. the IIR
    structures) and the synthesis estimator.  ``loop_*`` counts are
    along the longest feedback cycle: they bound the minimum sample
    period, since a feedback loop cannot be pipelined (retiming moves
    registers around a cycle but cannot add any).
    """

    multiplies: int
    additions: int
    delays: int
    loop_multiplies: int
    loop_additions: int
    #: Chain-structured datapaths (cascade, lattice) wire functional
    #: units neighbor-to-neighbor; global topologies (parallel sum,
    #: direct forms, dense state updates) need all-to-all routing.  The
    #: synthesis estimator charges interconnect accordingly.
    chain_local: bool = False

    @property
    def total_ops(self) -> int:
        return self.multiplies + self.additions

#: Reference feature size for the constants below (HYPER-era library).
REFERENCE_FEATURE_UM = 1.2

#: Operator delays at the reference feature size, nanoseconds:
#: ``delay = base + slope * word_length``.
ADD_DELAY_BASE_NS = 2.0
ADD_DELAY_SLOPE_NS = 0.35
MULT_DELAY_BASE_NS = 5.0
MULT_DELAY_SLOPE_NS = 2.0

#: Operator areas at the reference feature size, mm^2.
MULT_AREA_PER_BIT2 = 0.0075  # array multiplier: quadratic in word length
ADD_AREA_PER_BIT = 0.030
REGISTER_AREA_PER_BIT = 0.010
CONTROL_AREA_MM2 = 1.5
CONTROL_AREA_PER_OP = 0.010  # microcode/steering per scheduled operation
INTERCONNECT_PER_UNIT2 = 0.30
#: Chain-local datapaths stop paying quadratic wiring growth beyond
#: this many functional units (neighbor-to-neighbor connections).
LOCAL_INTERCONNECT_UNITS = 2


def add_delay_ns(word_length: int) -> float:
    """Ripple/carry-select adder delay at the reference library."""
    return ADD_DELAY_BASE_NS + ADD_DELAY_SLOPE_NS * word_length


def mult_delay_ns(word_length: int) -> float:
    """Array multiplier delay at the reference library."""
    return MULT_DELAY_BASE_NS + MULT_DELAY_SLOPE_NS * word_length


@dataclass(frozen=True)
class SynthesisEstimate:
    """HYPER-style outputs for one candidate implementation.

    ``latency_us`` is the input-to-output delay of one sample (the
    paper's fourth IIR performance criterion): the serial feedback path
    plus one output operation, rounded to whole clock cycles.
    """

    clock_ns: float
    cycles_per_sample: int
    latency_cycles: int
    n_multipliers: int
    n_adders: int
    n_registers: int
    area_mm2: float
    sample_period_us: float

    @property
    def throughput_samples_per_s(self) -> float:
        return 1.0e6 / self.sample_period_us

    @property
    def latency_us(self) -> float:
        return self.latency_cycles * self.clock_ns / 1000.0


def estimate_iir_implementation(
    stats: DataflowStats,
    word_length: int,
    sample_period_us: float,
    feature_um: float = REFERENCE_FEATURE_UM,
    delay_scale: float = 1.0,
) -> SynthesisEstimate:
    """Estimate the implementation of a realization at a sample rate.

    Raises :class:`SynthesisError` when the sample period is shorter
    than the structure's recursion bound — no amount of hardware makes
    a serial feedback loop faster, which is what pushes the long-loop
    structures (ladder, continued fraction) out of the running at the
    paper's high-throughput rows.

    ``delay_scale`` stretches (> 1) or shrinks (< 1) every operator
    delay uniformly — the DVFS hook: a reduced supply slows the logic,
    tightening both the cycle budget and the recursion bound.  The
    default 1.0 is an exact no-op.
    """
    if word_length < 4:
        raise ConfigurationError("word length below 4 bits is not supported")
    if sample_period_us <= 0:
        raise ConfigurationError("sample period must be positive")
    if delay_scale <= 0:
        raise ConfigurationError("delay scale must be positive")
    scale = feature_um / REFERENCE_FEATURE_UM * delay_scale
    clock_ns = (
        mult_delay_ns(word_length)
        if stats.multiplies
        else add_delay_ns(word_length)
    ) * scale
    sample_ns = sample_period_us * 1000.0
    cycles = int(sample_ns // clock_ns)
    if cycles < 1:
        raise SynthesisError(
            f"clock period {clock_ns:.1f} ns exceeds the sample period"
        )
    # Recursion bound: the longest feedback cycle must fit in one
    # sample period (loop operations execute strictly in sequence).
    loop_ns = (
        stats.loop_multiplies * mult_delay_ns(word_length)
        + stats.loop_additions * add_delay_ns(word_length)
    ) * scale
    if loop_ns > sample_ns:
        raise SynthesisError(
            f"feedback loop needs {loop_ns:.0f} ns but the sample period "
            f"is {sample_ns:.0f} ns"
        )
    # Dependence chains consume schedule slots; the loop leaves only
    # the remaining cycles for resource sharing.
    loop_cycles = max(
        1, math.ceil(loop_ns / clock_ns)
    )
    usable_cycles = max(1, cycles - max(0, loop_cycles - 1))
    n_multipliers = max(
        1 if stats.multiplies else 0,
        math.ceil(stats.multiplies / usable_cycles),
    )
    n_adders = max(
        1 if stats.additions else 0,
        math.ceil(stats.additions / usable_cycles),
    )
    units = n_multipliers + n_adders
    # Registers: the structure's delays plus one working register per
    # functional unit (pipeline/staging).
    n_registers = stats.delays + units
    lam = (feature_um / REFERENCE_FEATURE_UM) ** 2
    interconnect = INTERCONNECT_PER_UNIT2 * units**2
    if stats.chain_local and units > LOCAL_INTERCONNECT_UNITS:
        # Linear wiring growth once the chain spreads over many units.
        interconnect = (
            INTERCONNECT_PER_UNIT2
            * units**2
            * (LOCAL_INTERCONNECT_UNITS / units)
        )
    area = (
        n_multipliers * MULT_AREA_PER_BIT2 * word_length**2
        + n_adders * ADD_AREA_PER_BIT * word_length
        + n_registers * REGISTER_AREA_PER_BIT * word_length
        + CONTROL_AREA_MM2
        + CONTROL_AREA_PER_OP * stats.total_ops
        + interconnect
    ) * lam
    return SynthesisEstimate(
        clock_ns=clock_ns,
        cycles_per_sample=cycles,
        latency_cycles=loop_cycles + 1,
        n_multipliers=n_multipliers,
        n_adders=n_adders,
        n_registers=n_registers,
        area_mm2=area,
        sample_period_us=sample_period_us,
    )
