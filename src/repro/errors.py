"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError, ValueError):
    """An object was constructed with inconsistent or invalid parameters."""


class DesignSpaceError(ReproError, ValueError):
    """A design-space definition or point is malformed."""


class InfeasibleSpecError(ReproError):
    """No design point in the space satisfies the requested constraints.

    Raised (or reported, depending on API) when a search concludes that a
    specification cannot be met — e.g. the paper's Table 3 row asking for
    BER 1e-9 at 1 Mbps, which is marked "Not Feasible".
    """


class SynthesisError(ReproError):
    """The hardware estimation pipeline could not evaluate an instance."""


class FilterDesignError(ReproError, ValueError):
    """An IIR filter specification cannot be realized as requested."""
