"""Punctured code rates on one Viterbi core.

The paper's preliminaries introduce the general code rate k/n
(Sec. 3.1); production Viterbi cores reach rates above the mother
code's 1/2 by puncturing.  Because the decoder treats deleted positions
as erasures, a single trellis serves every rate — this example sweeps
the standard DVB rate set on the K=7 (171,133) code and shows the
rate/robustness trade-off.

Run:  python examples/punctured_rates.py
"""

from __future__ import annotations

from repro.viterbi import (
    AdaptiveQuantizer,
    BERSimulator,
    ConvolutionalEncoder,
    STANDARD_PATTERNS,
    Trellis,
    ViterbiDecoder,
)

SNR_GRID_DB = [3.0, 4.0, 5.0]


def main() -> None:
    encoder = ConvolutionalEncoder(7)
    decoder = ViterbiDecoder(
        Trellis.from_encoder(encoder), AdaptiveQuantizer(3), 49
    )
    print("Punctured rates of the K=7 (171,133) core "
          "(3-bit adaptive soft decoding)\n")
    print(f"{'rate':>5s} {'bandwidth':>10s}" +
          "".join(f"{snr:>13.1f} dB" for snr in SNR_GRID_DB))
    for name, pattern in sorted(STANDARD_PATTERNS.items()):
        simulator = BERSimulator(
            encoder, frame_length=280, puncture=pattern
        )
        k, n = pattern.rate
        bandwidth = f"x{n / k:.2f}"
        bers = [
            simulator.measure(decoder, snr, max_bits=40_000,
                              target_errors=200).ber
            for snr in SNR_GRID_DB
        ]
        print(f"{name:>5s} {bandwidth:>10s}" +
              "".join(f"{ber:16.3e}" for ber in bers))
    print(
        "\nHigher rates spend less bandwidth per data bit and pay for it "
        "in BER;\nthe decoder hardware is identical — only the erasure "
        "pattern changes."
    )


if __name__ == "__main__":
    main()
