"""Quickstart: decode a noisy stream, then let the MetaCore search pick
a decoder for a specification.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import BERThresholdCurve, SearchConfig
from repro.viterbi import (
    AWGNChannel,
    BERSimulator,
    ConvolutionalEncoder,
    HardQuantizer,
    Trellis,
    ViterbiDecoder,
    ViterbiMetaCore,
    ViterbiSpec,
    describe_point,
)


def decode_a_noisy_stream() -> None:
    """The substrate in five lines: encode, corrupt, decode, count."""
    print("=== 1. Decoding a noisy stream (K=5, hard decision) ===")
    encoder = ConvolutionalEncoder(5)  # G = (35, 23) octal
    decoder = ViterbiDecoder(
        Trellis.from_encoder(encoder), HardQuantizer(), traceback_depth=25
    )
    rng = np.random.default_rng(0)
    bits = rng.integers(0, 2, size=2000, dtype=np.int8)
    channel = AWGNChannel(es_n0_db=1.0)
    received = channel.transmit(encoder.encode(bits), rng)
    decoded = decoder.decode(received, sigma=channel.sigma)
    errors = int(np.count_nonzero(decoded != bits))
    print(f"channel symbol errors would be ~{channel.uncoded_ber():.1%} uncoded;")
    print(f"after Viterbi decoding: {errors}/{bits.size} bit errors "
          f"({errors / bits.size:.2%})\n")


def measure_a_ber_curve() -> None:
    """Monte-Carlo BER measurement with confidence intervals."""
    print("=== 2. Measuring a BER curve ===")
    encoder = ConvolutionalEncoder(5)
    decoder = ViterbiDecoder(
        Trellis.from_encoder(encoder), HardQuantizer(), traceback_depth=25
    )
    simulator = BERSimulator(encoder, frame_length=256)
    sweep = simulator.sweep(
        decoder, [0.0, 2.0, 4.0], max_bits=40_000, target_errors=200
    )
    for point in sweep.points:
        print(f"  {point}")
    print()


def search_for_a_metacore() -> None:
    """The paper's flow: specification in, optimized instance out."""
    print("=== 3. MetaCore search: BER <= 1e-2 @ 3 dB, 2 Mbps ===")
    spec = ViterbiSpec(
        throughput_bps=2e6,
        ber_curve=BERThresholdCurve.single(3.0, 1e-2),
    )
    metacore = ViterbiMetaCore(
        spec,
        fixed={"G": "standard", "N": 1},
        config=SearchConfig(max_resolution=2, refine_top_k=2),
    )
    result = metacore.search()
    print(result.summary())
    print(f"\nwinning instance: {describe_point(result.best_point)}")
    metrics = result.best_metrics
    print(
        f"estimated area {metrics['area_mm2']:.2f} mm^2 at "
        f"{metrics['throughput_bps'] / 1e6:.2f} Mbps, "
        f"measured BER {metrics['ber']:.2e}"
    )


if __name__ == "__main__":
    decode_a_noisy_stream()
    measure_a_ber_curve()
    search_for_a_metacore()
