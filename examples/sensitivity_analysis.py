"""Sensitivity analysis around an optimized design point.

After the MetaCore search returns a winner, a designer wants to know
which parameters still have leverage — exactly the correlated /
non-correlated / monotonic classification of paper Sec. 4.4, measured
rather than assumed.  This example optimizes a Viterbi instance, then
perturbs each design parameter around the winner and tabulates the
area and BER responses.

Run:  python examples/sensitivity_analysis.py
"""

from __future__ import annotations

from repro.core import BERThresholdCurve, SearchConfig
from repro.core.sensitivity import analyze_sensitivity, format_sensitivity_table
from repro.viterbi import (
    ViterbiMetaCore,
    ViterbiMetacoreEvaluator,
    ViterbiSpec,
    describe_point,
)
from repro.viterbi.metacore import normalize_viterbi_point


def main() -> None:
    spec = ViterbiSpec(
        throughput_bps=2e6,
        ber_curve=BERThresholdCurve.single(2.0, 1e-3),
    )
    metacore = ViterbiMetaCore(
        spec,
        fixed={"G": "standard", "N": 1},
        config=SearchConfig(max_resolution=2, refine_top_k=2),
    )
    print("searching (BER <= 1e-3 @ 2 dB, 2 Mbps)...")
    result = metacore.search()
    point = result.best_point
    print(f"winner: {describe_point(point)} -> "
          f"{result.best_metrics['area_mm2']:.2f} mm^2\n")

    space = metacore.design_space()
    evaluator = ViterbiMetacoreEvaluator(spec)
    for metric in ("area_mm2", "ber"):
        table = analyze_sensitivity(
            space,
            point,
            evaluator,
            metric,
            fidelity=0 if metric == "ber" else 0,
            normalizer=normalize_viterbi_point,
        )
        print(format_sensitivity_table(table))
        print()
    print(
        "Reading the tables: a positive area gradient along K confirms "
        "the paper's\nmonotonic classification (more states always cost "
        "area); the BER gradient\nshows how much error-rate margin the "
        "next parameter step would buy."
    )


if __name__ == "__main__":
    main()
