"""Decoders on harsher channels: BSC and Rayleigh fading.

The paper evaluates on AWGN (satellite/cable); a deployable core also
gets characterized on fading links.  This example runs the same K=5
decoders over AWGN, a matched binary symmetric channel, and fast/slow
Rayleigh fading — showing the soft-decision advantage collapsing on the
BSC (no soft information exists) and the cost of correlated fades
(why real systems interleave).

Run:  python examples/fading_channels.py
"""

from __future__ import annotations

import numpy as np

from repro.viterbi import (
    AWGNChannel,
    AdaptiveQuantizer,
    BinarySymmetricChannel,
    ConvolutionalEncoder,
    HardQuantizer,
    RayleighFadingChannel,
    Trellis,
    ViterbiDecoder,
)

ES_N0_DB = 4.0
FRAMES, FRAME_BITS = 48, 256


def main() -> None:
    encoder = ConvolutionalEncoder(5)
    trellis = Trellis.from_encoder(encoder)
    hard = ViterbiDecoder(trellis, HardQuantizer(), 25)
    soft = ViterbiDecoder(trellis, AdaptiveQuantizer(3), 25)

    rng = np.random.default_rng(42)
    bits = rng.integers(0, 2, size=(FRAMES, FRAME_BITS), dtype=np.int8)
    symbols = encoder.encode(bits)

    channels = {
        "AWGN": AWGNChannel(ES_N0_DB),
        "BSC (matched)": BinarySymmetricChannel.equivalent_to_awgn(ES_N0_DB),
        "Rayleigh fast": RayleighFadingChannel(ES_N0_DB, coherence_symbols=1),
        "Rayleigh slow": RayleighFadingChannel(ES_N0_DB, coherence_symbols=64),
    }

    print(f"BER of K=5 decoders at average Es/N0 = {ES_N0_DB} dB "
          f"({FRAMES * FRAME_BITS} bits per cell)\n")
    print(f"{'channel':>15s} {'hard':>11s} {'soft 3-bit':>11s}")
    for label, channel in channels.items():
        row = [label]
        for decoder in (hard, soft):
            received = channel.transmit(symbols, rng)
            decoded = decoder.decode(received, sigma=channel.sigma)
            ber = np.count_nonzero(decoded != bits) / bits.size
            row.append(ber)
        print(f"{row[0]:>15s} {row[1]:11.3e} {row[2]:11.3e}")

    fading = channels["Rayleigh fast"]
    print(
        f"\nuncoded Rayleigh BER at this SNR would be "
        f"{fading.average_uncoded_ber():.2e} — coding gain matters most "
        "exactly where the channel is worst."
    )


if __name__ == "__main__":
    main()
