"""Building a user-defined MetaCore on the generic core API.

The MetaCore methodology is not Viterbi-specific: any parameterized
algorithm with a cost evaluator can use the multiresolution search.
This example defines a toy "FIR decimator" MetaCore from scratch:

- degrees of freedom: number of taps, coefficient word length,
  polyphase decomposition on/off, oversampling ratio;
- cost model: a simple analytic area/throughput/attenuation estimate
  with fidelity-dependent noise (standing in for short vs long
  simulations);
- goal: minimize area subject to a stop-band attenuation floor and a
  throughput floor.

Run:  python examples/custom_metacore.py
"""

from __future__ import annotations

import math

from repro.core import (
    Constraint,
    Correlation,
    DesignGoal,
    DesignSpace,
    DiscreteParameter,
    FunctionEvaluator,
    MetacoreSearch,
    Objective,
    RandomSearch,
    SearchConfig,
)
from repro.utils.rng import spawn_rng


def build_space() -> DesignSpace:
    return DesignSpace(
        [
            DiscreteParameter(
                "taps", tuple(range(8, 129, 8)), Correlation.MONOTONIC,
                "FIR filter length",
            ),
            DiscreteParameter(
                "word_length", tuple(range(6, 21)), Correlation.MONOTONIC,
                "coefficient bits",
            ),
            DiscreteParameter(
                "polyphase", (False, True), Correlation.NONE,
                "polyphase decomposition",
            ),
            DiscreteParameter(
                "ratio", (2, 4, 8), Correlation.MONOTONIC,
                "decimation ratio",
            ),
        ]
    )


def evaluate(point, fidelity) -> dict:
    """Analytic cost model with fidelity-dependent measurement noise."""
    taps = int(point["taps"])
    word = int(point["word_length"])
    ratio = int(point["ratio"])
    polyphase = bool(point["polyphase"])
    # Attenuation: ~0.9 dB per tap at 16 bits, capped by quantization
    # noise floor at ~6 dB per coefficient bit.
    attenuation = min(0.9 * taps, 6.0 * (word - 1))
    # Short "simulations" (low fidelity) measure attenuation noisily.
    noise_db = {0: 4.0, 1: 1.0, 2: 0.0}[min(fidelity, 2)]
    rng = spawn_rng(42, tuple(sorted(point.items())), fidelity)
    measured = attenuation + rng.normal(0.0, noise_db)
    # Area: multiplies per output sample x word-dependent multiplier.
    macs = taps / (ratio if polyphase else 1)
    area = 0.002 * macs * word + 0.1 * math.sqrt(taps)
    # Throughput: polyphase runs at the low rate.
    throughput = 200e6 / (taps / ratio if polyphase else taps)
    return {
        "area_mm2": area,
        "attenuation_db": measured,
        "throughput_sps": throughput,
    }


def main() -> None:
    space = build_space()
    print(space.describe())
    goal = DesignGoal(
        objectives=[Objective("area_mm2")],
        constraints=[
            Constraint("attenuation_db", lower=60.0),
            Constraint("throughput_sps", lower=5e6),
        ],
    )
    search = MetacoreSearch(
        space,
        goal,
        FunctionEvaluator(evaluate, max_fidelity=2),
        SearchConfig(max_resolution=3, refine_top_k=3),
    )
    result = search.run()
    print("\n--- multiresolution search ---")
    print(result.summary())

    random_result = RandomSearch(
        space, goal, FunctionEvaluator(evaluate, max_fidelity=2)
    ).run(n_samples=result.log.n_evaluations, seed=3)
    print("\n--- random search at the same budget ---")
    print(random_result.summary())

    if result.feasible and random_result.feasible:
        ours = result.best_metrics["area_mm2"]
        theirs = random_result.best_metrics["area_mm2"]
        print(
            f"\nmultiresolution {ours:.3f} mm^2 vs random {theirs:.3f} mm^2 "
            f"({100 * (theirs - ours) / theirs:+.1f}% smaller)"
        )


if __name__ == "__main__":
    main()
