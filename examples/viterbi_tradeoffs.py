"""Algorithm-level trade-offs of the Viterbi decoder (paper Sec. 1.1).

Reproduces the Table-1 / Figure-1 exploration: several decoder
instances with *comparable BER* but drastically different area at a
fixed throughput, plus the Pareto front of the area/BER trade-off.

Run:  python examples/viterbi_tradeoffs.py
"""

from __future__ import annotations

from repro.core import (
    BERThresholdCurve,
    EvaluationRecord,
    Objective,
    pareto_front,
)
from repro.viterbi import (
    ViterbiMetacoreEvaluator,
    ViterbiSpec,
    describe_point,
    normalize_viterbi_point,
)

#: The three Table-1 instances plus a few neighbours.
INSTANCES = [
    {"K": 3, "L_mult": 2, "R1": 3, "Q": "adaptive", "M": 0},
    {"K": 5, "L_mult": 5, "R1": 1, "R2": 3, "Q": "adaptive", "M": 8},
    {"K": 7, "L_mult": 5, "R1": 1, "R2": 3, "Q": "adaptive", "M": 4},
    {"K": 3, "L_mult": 5, "R1": 1, "Q": "hard", "M": 0},
    {"K": 5, "L_mult": 5, "R1": 3, "Q": "adaptive", "M": 0},
    {"K": 7, "L_mult": 7, "R1": 3, "Q": "adaptive", "M": 0},
]


def _full_point(partial: dict) -> dict:
    point = {
        "K": 5, "L_mult": 5, "G": "standard", "R1": 1, "R2": 3,
        "Q": "adaptive", "N": 1, "M": 0,
    }
    point.update(partial)
    return normalize_viterbi_point(point)


def main() -> None:
    spec = ViterbiSpec(
        throughput_bps=1e6,
        ber_curve=BERThresholdCurve.single(2.0, 0.5),  # measure, don't constrain
    )
    evaluator = ViterbiMetacoreEvaluator(spec)

    print("Viterbi instances at fixed 1 Mbps (BER measured at 2 dB):\n")
    print(f"{'instance':52s} {'area mm^2':>10s} {'BER':>11s}")
    records = []
    for partial in INSTANCES:
        point = _full_point(partial)
        metrics = evaluator.evaluate(point, fidelity=2)
        print(
            f"{describe_point(point):52s} {metrics['area_mm2']:10.2f} "
            f"{metrics['ber']:11.3e}"
        )
        records.append(
            EvaluationRecord(tuple(sorted(point.items())), 2, metrics)
        )

    front = pareto_front(records, [Objective("area_mm2"), Objective("ber")])
    print("\nPareto-optimal instances (area vs BER):")
    for record in front:
        print(
            f"  {describe_point(record.as_point()):52s} "
            f"{record.metrics['area_mm2']:6.2f} mm^2  "
            f"BER {record.metrics['ber']:.3e}"
        )
    print(
        "\nNote the paper's Table-1 observation: instances with similar "
        "BER can differ in area by large factors; the MetaCore search "
        "exists to find the cheap corner automatically."
    )


if __name__ == "__main__":
    main()
