"""The cost-evaluation engine up close.

Walks one Viterbi instance through the full hardware pipeline: the
analytic operation trace, machine optimization at a throughput target,
the area breakdown, the energy estimate — and, for the IIR side, a true
node-level list schedule compared against the calibrated count-based
estimator.

Run:  python examples/hardware_models.py
"""

from __future__ import annotations

from repro.hardware import (
    MachineConfig,
    ViterbiInstanceParams,
    dfg_from_sections,
    estimate_energy,
    evaluate_machine,
    list_schedule,
    minimum_resources,
    optimize_machine,
    viterbi_program,
)
from repro.hardware.synthesis import estimate_iir_implementation
from repro.iir.design import design_filter, paper_bandpass_spec
from repro.iir.structures import realize


def viterbi_side() -> None:
    print("=== Viterbi: trace -> machine -> area/energy ===")
    params = ViterbiInstanceParams(
        constraint_length=5, traceback_depth=25, low_resolution_bits=1,
        n_symbols=2, high_resolution_bits=3, multires_paths=8,
        normalization_count=1,
    )
    program = viterbi_program(params)
    counts = program.op_counts
    print(f"instance: K=5 multires M=8  ->  {counts}")
    print(f"datapath width {program.datapath_width} bits, "
          f"storage {program.storage_bits} bits, "
          f"live registers ~{program.live_words}")

    for target in (1e6, 4e6):
        estimate = optimize_machine(program, target)
        machine = estimate.machine
        energy = estimate_energy(program, machine)
        print(f"\n  target {target / 1e6:g} Mbps -> "
              f"{machine.n_alus} ALUs, {machine.n_mem_ports} ports, "
              f"regfile {machine.regfile_words}")
        print(f"    {estimate.schedule.cycles:.0f} cycles/bit at "
              f"{machine.clock_mhz:.0f} MHz = "
              f"{estimate.throughput_bps / 1e6:.2f} Mbps")
        print(f"    area {estimate.area}")
        print(f"    energy {energy.total_nj:.2f} nJ/bit "
              f"({energy.power_mw(estimate.throughput_bps):.1f} mW at speed)")

    # Feature-size scaling dominates energy: the same machine at a
    # finer geometry (voltage tracking feature size) is far cheaper
    # per bit, while width barely matters — the classic argument for
    # migrating a core rather than widening it.
    base = MachineConfig(n_alus=3, datapath_width=program.datapath_width)
    shrunk = MachineConfig(n_alus=3, feature_um=0.18,
                           datapath_width=program.datapath_width)
    e_base = estimate_energy(program, base)
    e_shrunk = estimate_energy(program, shrunk)
    print(f"\n  0.25 um: {e_base.total_nj:.2f} nJ/bit   "
          f"0.18 um: {e_shrunk.total_nj:.2f} nJ/bit "
          "(constant-field scaling)")


def iir_side() -> None:
    print("\n=== IIR: count-based estimate vs node-level schedule ===")
    tf = design_filter(paper_bandpass_spec(), "elliptic").to_tf()
    cascade = realize("cascade", tf)
    estimate = estimate_iir_implementation(
        cascade.dataflow(), word_length=12, sample_period_us=2.0
    )
    print(f"count-based: {estimate.n_multipliers} mult, "
          f"{estimate.n_adders} add units, "
          f"{estimate.cycles_per_sample} cycles/sample, "
          f"{estimate.area_mm2:.2f} mm^2, latency {estimate.latency_us:.3f} us")

    graph = dfg_from_sections(cascade.sections)
    deadline = max(estimate.cycles_per_sample, graph.critical_path())
    resources = minimum_resources(graph, deadline)
    schedule = list_schedule(graph, resources)
    print(f"node-level:  {len(graph.nodes)} DFG nodes, critical path "
          f"{graph.critical_path()} cycles")
    print(f"             minimum units for the deadline: {resources}, "
          f"schedule length {schedule.cycles} cycles")
    print(f"             multiplier utilization "
          f"{schedule.utilization(graph, 'mult'):.0%}")


if __name__ == "__main__":
    viterbi_side()
    iir_side()
