"""IIR MetaCore structure exploration (paper Sec. 4.5 / 5.3).

Designs the paper's band-pass filter in all four approximation
families, realizes it in every structure, reports per-structure
hardware characteristics (ops, minimum word length, synthesized area),
and finally runs the MetaCore search at one throughput target.

Run:  python examples/iir_exploration.py
"""

from __future__ import annotations

import warnings

from repro.core import SearchConfig
from repro.errors import FilterDesignError, SynthesisError
from repro.hardware.synthesis import estimate_iir_implementation
from repro.iir import (
    BandpassSpec,
    IIRMetaCore,
    IIRSpec,
    available_structures,
    design_filter,
    minimum_word_length,
    paper_bandpass_spec,
    realize,
)

SAMPLE_PERIOD_US = 1.0


def compare_families() -> None:
    spec = paper_bandpass_spec()
    print("=== Approximation families for the Sec. 5.3 band-pass spec ===")
    print(f"{'family':>12s} {'proto order':>12s} {'digital order':>14s}")
    for family in ("butterworth", "chebyshev1", "chebyshev2", "elliptic"):
        designed = design_filter(spec, family)
        print(f"{family:>12s} {designed.order:12d} {designed.to_tf().order:14d}")
    print()


def compare_structures() -> None:
    spec = paper_bandpass_spec()
    # Design with margin so quantization has budget to spend.
    margin = BandpassSpec(
        spec.passband_low, spec.passband_high,
        spec.stopband_low, spec.stopband_high,
        0.6 * spec.passband_ripple, 0.6 * spec.stopband_ripple,
    )
    tf = design_filter(margin, "elliptic").to_tf()
    print("=== Structures for the elliptic design (60% ripple allocation) ===")
    print(
        f"{'structure':>11s} {'mult':>5s} {'add':>4s} {'regs':>5s} "
        f"{'loop':>9s} {'min W':>6s} {'area @1us':>10s}"
    )
    for name in available_structures():
        try:
            realization = realize(name, tf)
        except FilterDesignError as error:
            print(f"{name:>11s}  not realizable ({error})")
            continue
        stats = realization.dataflow()
        word = minimum_word_length(realization, spec, 28)
        if word is None:
            area = "spec fails"
        else:
            try:
                estimate = estimate_iir_implementation(
                    stats, word, SAMPLE_PERIOD_US
                )
                area = f"{estimate.area_mm2:7.2f} mm2"
            except SynthesisError as error:
                area = "infeasible"
        loop = f"{stats.loop_multiplies}m+{stats.loop_additions}a"
        print(
            f"{name:>11s} {stats.multiplies:5d} {stats.additions:4d} "
            f"{stats.delays:5d} {loop:>9s} {str(word):>6s} {area:>10s}"
        )
    print()


def run_search() -> None:
    print(f"=== MetaCore search at T = {SAMPLE_PERIOD_US} us ===")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        metacore = IIRMetaCore(
            IIRSpec.paper(SAMPLE_PERIOD_US),
            config=SearchConfig(max_resolution=3, refine_top_k=4),
        )
        result = metacore.search()
    print(result.summary())
    point = result.best_point
    print(
        f"\nwinner: {point['structure']} / {point['family']} at "
        f"W={point['word_length']} bits, ripple allocation "
        f"{point['ripple_allocation']:.2f} -> "
        f"{result.best_metrics['area_mm2']:.2f} mm^2"
    )


if __name__ == "__main__":
    compare_families()
    compare_structures()
    run_search()
