"""The multiresolution Viterbi decoding algorithm (paper Sec. 3.3).

Reproduces the Figure-8 experiment interactively: hard, soft, and
multiresolution decoding of the K=5 code across an SNR sweep, with the
average BER improvement over hard decoding reported for M = 4 and
M = 8 recomputed paths (paper: 64% and 82%).

Run:  python examples/multires_decoding.py
"""

from __future__ import annotations

from repro.viterbi import (
    AdaptiveQuantizer,
    BERSimulator,
    ConvolutionalEncoder,
    HardQuantizer,
    MultiresolutionViterbiDecoder,
    Trellis,
    ViterbiDecoder,
)

SNR_GRID_DB = [0.0, 1.0, 2.0, 3.0]


def main() -> None:
    encoder = ConvolutionalEncoder(5)
    trellis = Trellis.from_encoder(encoder)
    simulator = BERSimulator(encoder, frame_length=256)

    decoders = {
        "hard (1-bit)": ViterbiDecoder(trellis, HardQuantizer(), 25),
        "multires M=4": MultiresolutionViterbiDecoder(
            trellis, HardQuantizer(), AdaptiveQuantizer(3), 25,
            multires_paths=4,
        ),
        "multires M=8": MultiresolutionViterbiDecoder(
            trellis, HardQuantizer(), AdaptiveQuantizer(3), 25,
            multires_paths=8,
        ),
        "soft (3-bit)": ViterbiDecoder(trellis, AdaptiveQuantizer(3), 25),
    }

    print("BER vs Es/N0 for hard / multiresolution / soft decoding")
    print(f"(K=5, L=25, R1=1, R2=3 adaptive — the paper's Fig. 8 setup)\n")
    sweeps = {}
    for label, decoder in decoders.items():
        sweeps[label] = simulator.sweep(
            decoder, SNR_GRID_DB, max_bits=60_000, target_errors=300,
            label=label,
        )

    header = f"{'Es/N0':>7s}" + "".join(f"{label:>16s}" for label in decoders)
    print(header)
    for i, snr in enumerate(SNR_GRID_DB):
        row = f"{snr:7.1f}" + "".join(
            f"{sweeps[label].points[i].ber:16.3e}" for label in decoders
        )
        print(row)

    hard = sweeps["hard (1-bit)"]
    print("\naverage BER improvement over hard decision decoding:")
    for label in ("multires M=4", "multires M=8", "soft (3-bit)"):
        improvement = sweeps[label].improvement_over(hard)
        print(f"  {label:14s} {improvement:5.1f} %")
    print("\n(paper: M=4 -> 64 %, M=8 -> 82 %)")

    # What the recomputation costs: only M of the 16 states are touched
    # by the wide datapath each step.
    from repro.hardware import ViterbiInstanceParams, optimize_machine, viterbi_program

    print("\narea at 1 Mbps (0.25 um model):")
    for label, params in [
        ("hard", ViterbiInstanceParams(5, 25, 1)),
        ("multires M=4", ViterbiInstanceParams(5, 25, 1, 2, 3, 4, 1)),
        ("multires M=8", ViterbiInstanceParams(5, 25, 1, 2, 3, 8, 1)),
        ("soft 3-bit", ViterbiInstanceParams(5, 25, 3)),
    ]:
        estimate = optimize_machine(viterbi_program(params), 1e6)
        print(f"  {label:14s} {estimate.area_mm2:5.2f} mm^2")


if __name__ == "__main__":
    main()
